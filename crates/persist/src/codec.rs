//! Deterministic binary encoding for the on-disk record and snapshot
//! payloads, plus the FNV-1a 64-bit checksum both file formats use.
//!
//! Everything is fixed-width little-endian; strings are length-prefixed
//! UTF-8. The encoding is hand-rolled (the workspace builds with zero
//! external dependencies) and intentionally dumb: no varints, no schema
//! evolution — format changes bump the file magic instead.
//!
//! Decoding never panics. Every read is bounds-checked and every tag is
//! validated, returning a typed [`CodecError`]; the recovery path treats
//! any decode failure on a checksummed payload as corruption.

use sumtab_catalog::{Column, Date, ForeignKey, SqlType, SummaryTableDef, Table, Value};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The FNV-1a 64-bit hash of `bytes` — the checksum used by both the WAL
/// record frames and the snapshot file trailer.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A decode failure: where and why the payload stopped making sense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before a field was complete.
    UnexpectedEof {
        /// Byte offset of the incomplete read.
        at: usize,
        /// How many bytes the field needed.
        wanted: usize,
    },
    /// A tag or embedded value was out of range.
    Invalid {
        /// The field being decoded.
        what: &'static str,
        /// The offending raw value.
        detail: String,
    },
    /// The payload decoded cleanly but bytes remained.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof { at, wanted } => {
                write!(
                    f,
                    "unexpected end of payload at byte {at} (wanted {wanted} more)"
                )
            }
            CodecError::Invalid { what, detail } => write!(f, "invalid {what}: {detail}"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after payload")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only byte sink.
#[derive(Debug, Default)]
pub struct Enc {
    /// The encoded bytes.
    pub buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an f64 as its IEEE bit pattern (NaN-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a length (usize as u64).
    pub fn len_of(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len_of(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
}

/// A bounds-checked cursor over an encoded payload.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the payload was fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                at: self.pos,
                wanted: n,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.u64()? as i64)
    }

    /// Read an f64 from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length, sanity-bounded by the bytes actually remaining so a
    /// corrupt length cannot trigger a huge allocation.
    pub fn len_of(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        if v > self.remaining() as u64 {
            return Err(CodecError::Invalid {
                what: "length prefix",
                detail: format!("{v} exceeds the {} bytes remaining", self.remaining()),
            });
        }
        Ok(v as usize)
    }

    /// Read a *count* of fixed-or-variable records. Bounded only loosely
    /// (each record needs at least one byte), which still blocks
    /// pathological preallocation from corrupt counts.
    pub fn count(&mut self) -> Result<usize, CodecError> {
        self.len_of()
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.len_of()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|e| CodecError::Invalid {
            what: "utf-8 string",
            detail: e.to_string(),
        })
    }

    /// Read a bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Invalid {
                what: "bool",
                detail: other.to_string(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Catalog-type encodings
// ---------------------------------------------------------------------------

fn sql_type_tag(t: SqlType) -> u8 {
    match t {
        SqlType::Int => 0,
        SqlType::Double => 1,
        SqlType::Varchar => 2,
        SqlType::Date => 3,
        SqlType::Bool => 4,
    }
}

fn sql_type_from(tag: u8) -> Result<SqlType, CodecError> {
    Ok(match tag {
        0 => SqlType::Int,
        1 => SqlType::Double,
        2 => SqlType::Varchar,
        3 => SqlType::Date,
        4 => SqlType::Bool,
        other => {
            return Err(CodecError::Invalid {
                what: "sql type tag",
                detail: other.to_string(),
            })
        }
    })
}

/// Encode one [`Value`]. Dates travel as their day number, so any date the
/// calendar module accepts round-trips exactly.
pub fn encode_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Null => e.u8(0),
        Value::Int(i) => {
            e.u8(1);
            e.i64(*i);
        }
        Value::Double(d) => {
            e.u8(2);
            e.f64(*d);
        }
        Value::Str(s) => {
            e.u8(3);
            e.str(s);
        }
        Value::Date(d) => {
            e.u8(4);
            e.i64(d.to_day_number());
        }
        Value::Bool(b) => {
            e.u8(5);
            e.bool(*b);
        }
    }
}

/// Decode one [`Value`].
pub fn decode_value(d: &mut Dec<'_>) -> Result<Value, CodecError> {
    Ok(match d.u8()? {
        0 => Value::Null,
        1 => Value::Int(d.i64()?),
        2 => Value::Double(d.f64()?),
        3 => Value::Str(d.str()?),
        4 => {
            let n = d.i64()?;
            let date = Date::from_day_number(n).ok_or_else(|| CodecError::Invalid {
                what: "date day number",
                detail: n.to_string(),
            })?;
            Value::Date(date)
        }
        5 => Value::Bool(d.bool()?),
        other => {
            return Err(CodecError::Invalid {
                what: "value tag",
                detail: other.to_string(),
            })
        }
    })
}

/// Encode a batch of rows (count, then per-row arity + values).
pub fn encode_rows(e: &mut Enc, rows: &[Vec<Value>]) {
    e.len_of(rows.len());
    for row in rows {
        e.len_of(row.len());
        for v in row {
            encode_value(e, v);
        }
    }
}

/// Decode a batch of rows.
pub fn decode_rows(d: &mut Dec<'_>) -> Result<Vec<Vec<Value>>, CodecError> {
    let n = d.count()?;
    let mut rows = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let w = d.count()?;
        let mut row = Vec::with_capacity(w.min(1 << 10));
        for _ in 0..w {
            row.push(decode_value(d)?);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Encode a table schema (name, columns, primary-key ordinals).
pub fn encode_table(e: &mut Enc, t: &Table) {
    e.str(&t.name);
    e.len_of(t.columns.len());
    for c in &t.columns {
        e.str(&c.name);
        e.u8(sql_type_tag(c.ty));
        e.bool(c.nullable);
    }
    e.len_of(t.primary_key.len());
    for &i in &t.primary_key {
        e.u32(i as u32);
    }
}

/// Decode a table schema. Primary-key ordinals are validated against the
/// column count so a corrupt snapshot cannot build an out-of-range key.
pub fn decode_table(d: &mut Dec<'_>) -> Result<Table, CodecError> {
    let name = d.str()?;
    let ncols = d.count()?;
    let mut columns = Vec::with_capacity(ncols.min(1 << 10));
    for _ in 0..ncols {
        let cname = d.str()?;
        let ty = sql_type_from(d.u8()?)?;
        let nullable = d.bool()?;
        columns.push(if nullable {
            Column::nullable(&cname, ty)
        } else {
            Column::new(&cname, ty)
        });
    }
    let npk = d.count()?;
    let mut primary_key = Vec::with_capacity(npk.min(1 << 10));
    for _ in 0..npk {
        let i = d.u32()? as usize;
        if i >= columns.len() {
            return Err(CodecError::Invalid {
                what: "primary-key ordinal",
                detail: format!("{i} out of range for {} columns", columns.len()),
            });
        }
        primary_key.push(i);
    }
    let mut t = Table::new(&name, columns);
    t.primary_key = primary_key;
    Ok(t)
}

/// Encode an RI constraint by table names and column ordinals.
pub fn encode_fk(e: &mut Enc, fk: &ForeignKey) {
    e.str(&fk.child_table);
    e.len_of(fk.child_columns.len());
    for &i in &fk.child_columns {
        e.u32(i as u32);
    }
    e.str(&fk.parent_table);
    e.len_of(fk.parent_columns.len());
    for &i in &fk.parent_columns {
        e.u32(i as u32);
    }
}

/// Decode an RI constraint (ordinal validity is checked by the catalog when
/// the facade re-registers it against the decoded tables).
pub fn decode_fk(d: &mut Dec<'_>) -> Result<ForeignKey, CodecError> {
    let child_table = d.str()?;
    let n = d.count()?;
    let mut child_columns = Vec::with_capacity(n.min(1 << 10));
    for _ in 0..n {
        child_columns.push(d.u32()? as usize);
    }
    let parent_table = d.str()?;
    let m = d.count()?;
    let mut parent_columns = Vec::with_capacity(m.min(1 << 10));
    for _ in 0..m {
        parent_columns.push(d.u32()? as usize);
    }
    Ok(ForeignKey {
        child_table,
        child_columns,
        parent_table,
        parent_columns,
    })
}

/// Encode a summary-table definition (name + defining SQL).
pub fn encode_summary(e: &mut Enc, s: &SummaryTableDef) {
    e.str(&s.name);
    e.str(&s.query_sql);
}

/// Decode a summary-table definition.
pub fn decode_summary(d: &mut Dec<'_>) -> Result<SummaryTableDef, CodecError> {
    Ok(SummaryTableDef {
        name: d.str()?,
        query_sql: d.str()?,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn values_round_trip_exactly() {
        let vals = vec![
            Value::Null,
            Value::Int(i64::MIN),
            Value::Int(0),
            Value::Double(f64::NAN),
            Value::Double(-0.0),
            Value::Str("héllo 'quoted'".into()),
            Value::Str(String::new()),
            Value::Date(Date::parse("1995-06-01").unwrap()),
            Value::Bool(true),
        ];
        let mut e = Enc::new();
        encode_rows(&mut e, std::slice::from_ref(&vals));
        let mut d = Dec::new(&e.buf);
        let back = decode_rows(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back.len(), 1);
        for (a, b) in vals.iter().zip(&back[0]) {
            // Bit-exact, not just grouping-equal: NaN and -0.0 must survive.
            match (a, b) {
                (Value::Double(x), Value::Double(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn tables_and_fks_round_trip() {
        let t = Table::new(
            "trans",
            vec![
                Column::new("tid", SqlType::Int),
                Column::nullable("note", SqlType::Varchar),
                Column::new("price", SqlType::Double),
            ],
        )
        .with_primary_key(&["tid"])
        .unwrap();
        let fk = ForeignKey {
            child_table: "trans".into(),
            child_columns: vec![0],
            parent_table: "acct".into(),
            parent_columns: vec![0],
        };
        let mut e = Enc::new();
        encode_table(&mut e, &t);
        encode_fk(&mut e, &fk);
        let mut d = Dec::new(&e.buf);
        assert_eq!(decode_table(&mut d).unwrap(), t);
        assert_eq!(decode_fk(&mut d).unwrap(), fk);
        d.finish().unwrap();
    }

    #[test]
    fn decode_rejects_garbage_without_panicking() {
        // Every prefix of a valid payload fails typed, never panics.
        let mut e = Enc::new();
        encode_value(&mut e, &Value::Str("hello".into()));
        for cut in 0..e.buf.len() {
            let mut d = Dec::new(&e.buf[..cut]);
            assert!(decode_value(&mut d).is_err(), "prefix {cut} must fail");
        }
        // Bad tags fail typed.
        let mut d = Dec::new(&[99]);
        assert!(matches!(
            decode_value(&mut d),
            Err(CodecError::Invalid {
                what: "value tag",
                ..
            })
        ));
        // A length prefix larger than the remaining bytes is rejected
        // before any allocation.
        let mut e2 = Enc::new();
        e2.u64(u64::MAX);
        let mut d2 = Dec::new(&e2.buf);
        assert!(d2.len_of().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Enc::new();
        encode_value(&mut e, &Value::Int(1));
        e.u8(0xff);
        let mut d = Dec::new(&e.buf);
        decode_value(&mut d).unwrap();
        assert_eq!(d.finish(), Err(CodecError::TrailingBytes { remaining: 1 }));
    }
}
