//! Point-in-time snapshots of the full durable session state.
//!
//! ## File format
//!
//! ```text
//! [magic "SUMTABS1" : 8 bytes]
//! [payload          : encoded SnapshotState]
//! [checksum         : u64 le, fnv1a64(payload)]
//! ```
//!
//! ## Atomicity
//!
//! [`write_snapshot`] writes `snapshot.tmp`, fsyncs it, atomically renames
//! it over `snapshot.bin`, then best-effort fsyncs the directory. A crash at
//! any point leaves either the old snapshot or the new one — never a blend —
//! because readers only ever open `snapshot.bin`.
//!
//! The snapshot records `last_lsn`, the LSN of the last WAL record its
//! state covers. Recovery replays only WAL records with a *greater* LSN, so
//! the crash window between "snapshot renamed" and "WAL reset" is harmless.
//!
//! ## Fault injection
//!
//! `snapshot-write` makes the temp-file write short (torn temp file, which
//! can never be loaded — it is not `snapshot.bin`); `snapshot-rename` fails
//! the rename, leaving the previous snapshot authoritative.

use crate::codec::{self, Dec, Enc};
use crate::retry::{self, RetryPolicy};
use crate::{failpoint, PersistError};
use std::io::Write;
use std::path::Path;
use sumtab_catalog::{ForeignKey, SummaryTableDef, Table, Value};

/// File magic for snapshot files; bump the trailing digit on format changes.
pub const SNAP_MAGIC: &[u8; 8] = b"SUMTABS1";

/// Snapshot file name inside a durability directory.
pub const SNAP_FILE: &str = "snapshot.bin";

/// Temp file the atomic-rename protocol writes first.
pub const SNAP_TMP: &str = "snapshot.tmp";

/// The complete durable state of a session at one instant: catalog,
/// data (base tables *and* materialized summary tables), modification
/// epochs, and the per-AST epoch snapshots that drive staleness tracking.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotState {
    /// LSN of the last WAL record this snapshot covers (0 = none).
    pub last_lsn: u64,
    /// The facade's AST/plan-cache generation at snapshot time.
    pub generation: u64,
    /// Every table schema, base and summary-backing alike.
    pub tables: Vec<Table>,
    /// Declared RI constraints.
    pub foreign_keys: Vec<ForeignKey>,
    /// Summary-table definitions (name + defining SQL).
    pub summaries: Vec<SummaryTableDef>,
    /// Row data per table name, including materialized summary contents.
    pub data: Vec<(String, Vec<Vec<Value>>)>,
    /// Modification epoch per table name.
    pub epochs: Vec<(String, u64)>,
    /// Per-AST base-table epoch snapshots: `(ast name, [(base, epoch)])`.
    pub ast_epochs: Vec<(String, Vec<(String, u64)>)>,
}

fn encode_state(s: &SnapshotState) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(s.last_lsn);
    e.u64(s.generation);
    e.len_of(s.tables.len());
    for t in &s.tables {
        codec::encode_table(&mut e, t);
    }
    e.len_of(s.foreign_keys.len());
    for fk in &s.foreign_keys {
        codec::encode_fk(&mut e, fk);
    }
    e.len_of(s.summaries.len());
    for st in &s.summaries {
        codec::encode_summary(&mut e, st);
    }
    e.len_of(s.data.len());
    for (name, rows) in &s.data {
        e.str(name);
        codec::encode_rows(&mut e, rows);
    }
    e.len_of(s.epochs.len());
    for (name, epoch) in &s.epochs {
        e.str(name);
        e.u64(*epoch);
    }
    e.len_of(s.ast_epochs.len());
    for (name, bases) in &s.ast_epochs {
        e.str(name);
        e.len_of(bases.len());
        for (base, epoch) in bases {
            e.str(base);
            e.u64(*epoch);
        }
    }
    e.buf
}

fn decode_state(payload: &[u8]) -> Result<SnapshotState, PersistError> {
    let mut d = Dec::new(payload);
    let last_lsn = d.u64()?;
    let generation = d.u64()?;
    let n = d.count()?;
    let mut tables = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        tables.push(codec::decode_table(&mut d)?);
    }
    let n = d.count()?;
    let mut foreign_keys = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        foreign_keys.push(codec::decode_fk(&mut d)?);
    }
    let n = d.count()?;
    let mut summaries = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        summaries.push(codec::decode_summary(&mut d)?);
    }
    let n = d.count()?;
    let mut data = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let name = d.str()?;
        let rows = codec::decode_rows(&mut d)?;
        data.push((name, rows));
    }
    let n = d.count()?;
    let mut epochs = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let name = d.str()?;
        let epoch = d.u64()?;
        epochs.push((name, epoch));
    }
    let n = d.count()?;
    let mut ast_epochs = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let name = d.str()?;
        let m = d.count()?;
        let mut bases = Vec::with_capacity(m.min(1 << 12));
        for _ in 0..m {
            let base = d.str()?;
            let epoch = d.u64()?;
            bases.push((base, epoch));
        }
        ast_epochs.push((name, bases));
    }
    d.finish()?;
    Ok(SnapshotState {
        last_lsn,
        generation,
        tables,
        foreign_keys,
        summaries,
        data,
        epochs,
        ast_epochs,
    })
}

/// Write `state` to `dir/snapshot.bin` via the write-temp → fsync → rename
/// protocol, under the given retry policy.
///
/// Fail points: `snapshot-write` truncates the temp-file write partway and
/// errors; `snapshot-rename` fails the rename. In both cases the previous
/// `snapshot.bin` (if any) remains authoritative and untouched.
pub fn write_snapshot(
    dir: &Path,
    state: &SnapshotState,
    policy: RetryPolicy,
) -> Result<(), PersistError> {
    let payload = encode_state(state);
    let mut bytes = Vec::with_capacity(SNAP_MAGIC.len() + payload.len() + 8);
    bytes.extend_from_slice(SNAP_MAGIC);
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&codec::fnv1a64(&payload).to_le_bytes());
    let tmp = dir.join(SNAP_TMP);
    let dst = dir.join(SNAP_FILE);
    retry::with_backoff(policy, |_| {
        let mut f = std::fs::File::create(&tmp)
            .map_err(|e| PersistError::io(format!("create {}", tmp.display()), &e))?;
        if failpoint::triggered("snapshot-write") {
            // Torn temp file: half the bytes land, then the "device" fails.
            // Harmless — the temp file is never read back.
            let _ = f.write_all(&bytes[..bytes.len() / 2]);
            let _ = f.sync_data();
            return Err(PersistError::injected("snapshot-write"));
        }
        f.write_all(&bytes)
            .map_err(|e| PersistError::io("write snapshot temp file", &e))?;
        f.sync_data()
            .map_err(|e| PersistError::io("fsync snapshot temp file", &e))?;
        drop(f);
        if failpoint::triggered("snapshot-rename") {
            return Err(PersistError::injected("snapshot-rename"));
        }
        std::fs::rename(&tmp, &dst)
            .map_err(|e| PersistError::io(format!("rename snapshot into {}", dst.display()), &e))?;
        // Make the rename itself durable. Failure here is non-fatal: the
        // rename already happened; at worst an immediate crash re-runs
        // recovery from the previous snapshot + the still-intact WAL.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })
}

/// Read `dir/snapshot.bin`. `Ok(None)` when no snapshot exists; a typed
/// [`PersistError::Corrupt`] when one exists but fails magic, checksum, or
/// decode validation — a corrupt snapshot is **never** partially loaded.
pub fn read_snapshot(dir: &Path) -> Result<Option<SnapshotState>, PersistError> {
    let path = dir.join(SNAP_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::io(format!("read {}", path.display()), &e)),
    };
    if bytes.len() < SNAP_MAGIC.len() + 8 || &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(PersistError::Corrupt {
            what: "snapshot",
            detail: format!(
                "bad or missing magic in {} ({} bytes)",
                path.display(),
                bytes.len()
            ),
        });
    }
    let payload = &bytes[SNAP_MAGIC.len()..bytes.len() - 8];
    let mut a = [0u8; 8];
    a.copy_from_slice(&bytes[bytes.len() - 8..]);
    let stored = u64::from_le_bytes(a);
    if codec::fnv1a64(payload) != stored {
        return Err(PersistError::Corrupt {
            what: "snapshot",
            detail: format!("checksum mismatch in {}", path.display()),
        });
    }
    decode_state(payload).map(Some).map_err(|e| match e {
        PersistError::Corrupt { detail, .. } => PersistError::Corrupt {
            what: "snapshot",
            detail,
        },
        other => other,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use sumtab_catalog::{Column, SqlType};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "sumtab-snap-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_state() -> SnapshotState {
        let t = Table::new(
            "trans",
            vec![
                Column::new("tid", SqlType::Int),
                Column::new("price", SqlType::Double),
            ],
        )
        .with_primary_key(&["tid"])
        .unwrap();
        SnapshotState {
            last_lsn: 42,
            generation: 7,
            tables: vec![t],
            foreign_keys: vec![ForeignKey {
                child_table: "trans".into(),
                child_columns: vec![0],
                parent_table: "acct".into(),
                parent_columns: vec![0],
            }],
            summaries: vec![SummaryTableDef {
                name: "st".into(),
                query_sql: "select tid, count(*) as c from trans group by tid".into(),
            }],
            data: vec![(
                "trans".into(),
                vec![vec![Value::Int(1), Value::Double(9.5)]],
            )],
            epochs: vec![("trans".into(), 3)],
            ast_epochs: vec![("st".into(), vec![("trans".into(), 3)])],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = tmp_dir("roundtrip");
        assert!(read_snapshot(&dir).unwrap().is_none());
        let state = sample_state();
        write_snapshot(&dir, &state, RetryPolicy::none()).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().unwrap(), state);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_is_rejected_typed() {
        let dir = tmp_dir("corrupt");
        write_snapshot(&dir, &sample_state(), RetryPolicy::none()).unwrap();
        let path = dir.join(SNAP_FILE);
        let clean = std::fs::read(&path).unwrap();
        // Flip one byte at every offset: every mutation must be caught.
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            let got = read_snapshot(&dir);
            assert!(
                matches!(
                    got,
                    Err(PersistError::Corrupt {
                        what: "snapshot",
                        ..
                    })
                ),
                "flip at {i} must be rejected, got {got:?}"
            );
        }
        // Truncations too.
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(read_snapshot(&dir).is_err(), "truncation at {cut}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_leaves_previous_snapshot_authoritative() {
        let dir = tmp_dir("failpoint");
        let old = sample_state();
        write_snapshot(&dir, &old, RetryPolicy::none()).unwrap();
        let mut newer = old.clone();
        newer.last_lsn = 99;
        {
            let _fp = failpoint::armed("snapshot-write");
            assert!(write_snapshot(&dir, &newer, RetryPolicy::none()).is_err());
        }
        assert_eq!(read_snapshot(&dir).unwrap().unwrap(), old);
        {
            let _fp = failpoint::armed("snapshot-rename");
            assert!(write_snapshot(&dir, &newer, RetryPolicy::none()).is_err());
        }
        assert_eq!(read_snapshot(&dir).unwrap().unwrap(), old);
        // Disarmed, the write goes through.
        write_snapshot(&dir, &newer, RetryPolicy::none()).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().unwrap(), newer);
        std::fs::remove_dir_all(&dir).ok();
    }
}
