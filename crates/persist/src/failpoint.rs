//! Minimal in-tree fail-point support for fault-injection testing.
//!
//! A *fail point* is a named hook compiled into production code paths; when
//! armed, [`triggered`] returns `true` at that hook and the surrounding code
//! takes its error path, letting tests (and operators reproducing bugs)
//! exercise degraded-mode behavior deterministically.
//!
//! This module lives in `sumtab-persist` (the bottom of the IO stack) and is
//! re-exported as `sumtab::failpoint`, its original home. The workspace
//! plants fail points at these boundaries:
//!
//! | name                | effect when armed                                   |
//! |---------------------|-----------------------------------------------------|
//! | `match`             | every AST match attempt fails (matcher error path)  |
//! | `execute-rewritten` | executing an AST-backed plan fails (fallback path)  |
//! | `maintain`          | incremental maintenance fails (full-refresh path)   |
//! | `wal-append`        | WAL append writes a **short (torn) record** and errors |
//! | `wal-fsync`         | WAL fsync fails after a complete write              |
//! | `snapshot-write`    | snapshot temp-file write is short and errors        |
//! | `snapshot-rename`   | the atomic snapshot rename fails                    |
//!
//! Arming is programmatic ([`arm`]/[`disarm`], the scope-bound [`armed`]
//! guard for tests, or the budgeted [`arm_times`] for transient faults) or
//! environmental: `SUMTAB_FAILPOINTS=match,wal-append` arms a comma-separated
//! list at first use.
//!
//! Disabled cost: when nothing is armed, [`triggered`] is two relaxed atomic
//! loads — no lock, no allocation. State is process-global; tests that arm
//! fail points must serialize themselves (see `tests/failpoints.rs`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock};

/// Fast path: true iff at least one fail point is armed.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

/// Armed points: name → remaining trigger budget (`None` = unlimited).
fn set() -> MutexGuard<'static, HashMap<String, Option<u32>>> {
    static SET: OnceLock<Mutex<HashMap<String, Option<u32>>>> = OnceLock::new();
    let m = SET.get_or_init(|| Mutex::new(HashMap::new()));
    match m.lock() {
        Ok(g) => g,
        // A panic while holding the lock leaves the set intact; keep going.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Arm any fail points listed in `SUMTAB_FAILPOINTS` (once per process).
fn ensure_env_armed() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        if let Ok(list) = std::env::var("SUMTAB_FAILPOINTS") {
            for name in list.split(',').map(str::trim).filter(|n| !n.is_empty()) {
                arm(name);
            }
        }
    });
}

/// Arm the named fail point: subsequent [`triggered`] calls return `true`.
pub fn arm(name: &str) {
    let mut s = set();
    s.insert(name.to_string(), None);
    ANY_ARMED.store(true, Ordering::Release);
}

/// Arm the named fail point for exactly `n` triggers, after which it
/// disarms itself — models *transient* faults that a bounded retry should
/// ride out (e.g. two failing fsyncs followed by success).
pub fn arm_times(name: &str, n: u32) {
    let mut s = set();
    s.insert(name.to_string(), Some(n));
    ANY_ARMED.store(true, Ordering::Release);
}

/// Disarm the named fail point.
pub fn disarm(name: &str) {
    let mut s = set();
    s.remove(name);
    if s.is_empty() {
        ANY_ARMED.store(false, Ordering::Release);
    }
}

/// Disarm every fail point.
pub fn disarm_all() {
    let mut s = set();
    s.clear();
    ANY_ARMED.store(false, Ordering::Release);
}

/// Should the named fail point fire? Called from production code at the
/// hook site; returns `false` (after two atomic loads) unless armed. A
/// budgeted point ([`arm_times`]) decrements its budget per trigger and
/// disarms itself at zero.
pub fn triggered(name: &str) -> bool {
    ensure_env_armed();
    if !ANY_ARMED.load(Ordering::Acquire) {
        return false;
    }
    let mut s = set();
    match s.get_mut(name) {
        None => false,
        Some(None) => true,
        Some(Some(budget)) => {
            if *budget == 0 {
                s.remove(name);
                if s.is_empty() {
                    ANY_ARMED.store(false, Ordering::Release);
                }
                return false;
            }
            *budget -= 1;
            let now_spent = *budget == 0;
            if now_spent {
                s.remove(name);
                if s.is_empty() {
                    ANY_ARMED.store(false, Ordering::Release);
                }
            }
            true
        }
    }
}

/// Is *any* fail point armed? Fault-injection runs bypass result caches
/// (e.g. the session plan cache) through this check, so an injected outcome
/// is never stored and never served after disarming.
pub fn any_armed() -> bool {
    ensure_env_armed();
    ANY_ARMED.load(Ordering::Acquire)
}

/// A scope-bound arming: the fail point stays armed until the guard drops.
/// Test helper — prefer this over raw [`arm`]/[`disarm`] so a failing
/// assertion cannot leave the point armed for other tests.
#[must_use = "the fail point disarms when this guard is dropped"]
pub struct Armed {
    name: String,
}

/// Arm `name` for the lifetime of the returned guard.
pub fn armed(name: &str) -> Armed {
    arm(name);
    Armed {
        name: name.to_string(),
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        disarm(&self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arming_is_scoped_and_observable() {
        // This test owns the fail point name; nothing else arms it.
        assert!(!triggered("failpoint-unit-test"));
        {
            let _g = armed("failpoint-unit-test");
            assert!(triggered("failpoint-unit-test"));
            assert!(!triggered("failpoint-unit-test-other"));
        }
        assert!(!triggered("failpoint-unit-test"));
    }

    #[test]
    fn budgeted_arming_self_disarms() {
        arm_times("failpoint-budget-test", 2);
        assert!(triggered("failpoint-budget-test"));
        assert!(triggered("failpoint-budget-test"));
        assert!(!triggered("failpoint-budget-test"), "budget spent");
        assert!(!triggered("failpoint-budget-test"));
    }
}
