//! The append-only write-ahead log of logical session records.
//!
//! ## File format
//!
//! ```text
//! [magic "SUMTABW1" : 8 bytes]
//! repeated frames:
//!   [lsn      : u64 le]   monotonically +1 within a file
//!   [len      : u32 le]   payload byte count (bounded by MAX_RECORD_LEN)
//!   [checksum : u64 le]   fnv1a64(lsn_le ++ len_le ++ payload)
//!   [payload  : len bytes] one encoded WalRecord
//! ```
//!
//! LSNs are global across snapshots: a snapshot taken after LSN `L` lets
//! recovery skip any frame with `lsn <= L`, which makes the crash window
//! between "snapshot renamed" and "log reset" harmless.
//!
//! ## Torn tails
//!
//! [`scan`] accepts the longest valid prefix of frames and reports where
//! (and why) validation first failed; everything after that point is a
//! *torn tail* — the expected debris of a crash mid-append — and recovery
//! truncates the file back to the last valid frame. A file whose **header**
//! is damaged is a different matter: there is no valid prefix to salvage,
//! so that is a typed [`PersistError::Corrupt`], never a silent empty log.
//!
//! ## Fault injection
//!
//! [`Wal::append`] carries the `wal-append` fail point (writes *half* the
//! frame, then errors — a deterministic torn write) and `wal-fsync` (the
//! write lands but the flush fails). Each attempt of the bounded retry
//! first truncates back to the committed length, so a transient fault
//! cannot stack partial frames.

use crate::codec::{self, CodecError, Dec, Enc};
use crate::retry::{self, RetryPolicy};
use crate::{failpoint, PersistError};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use sumtab_catalog::{Table, Value};

/// File magic for WAL files; bump the trailing digit on format changes.
pub const WAL_MAGIC: &[u8; 8] = b"SUMTABW1";

/// Frame header size: lsn (8) + len (4) + checksum (8).
const FRAME_HEADER: usize = 20;

/// Upper bound on one record's payload — anything larger is treated as
/// corruption (a flipped length byte must not trigger a giant read).
pub const MAX_RECORD_LEN: u32 = 1 << 28;

/// One logical, replayable session mutation. Replay applies records in LSN
/// order through the same code paths as the live session, which is what
/// makes recovery deterministic (including epoch bookkeeping).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `CREATE TABLE` — the full schema, including the primary key.
    CreateTable(Table),
    /// `ALTER TABLE .. ADD FOREIGN KEY`, by names (replay re-validates
    /// against the recovered catalog).
    AddForeignKey {
        /// Referencing table.
        child_table: String,
        /// Referencing column names.
        columns: Vec<String>,
        /// Referenced table.
        parent_table: String,
    },
    /// `CREATE SUMMARY TABLE` — replay re-materializes from the defining
    /// SQL against the recovered base data, after re-running the plan
    /// verifier on the rebuilt definition graph.
    RegisterAst {
        /// The AST's name.
        name: String,
        /// Its defining `SELECT`.
        query_sql: String,
    },
    /// Summary-table deregistration: definition, backing schema, and data
    /// are all dropped.
    DeregisterAst {
        /// The AST's name.
        name: String,
    },
    /// A plain base-table insert (no registered AST read the table when
    /// the record was logged).
    Insert {
        /// Target table.
        table: String,
        /// The inserted rows.
        rows: Vec<Vec<Value>>,
    },
    /// An insert routed through summary maintenance.
    Append {
        /// Target table.
        table: String,
        /// The appended rows.
        rows: Vec<Vec<Value>>,
    },
    /// A full recomputation of one summary table (idempotent on replay).
    Refresh {
        /// The AST's name.
        name: String,
    },
    /// An explicit modification-epoch bump — used to durably invalidate a
    /// table (and thus any AST snapshotted against it) without new data.
    EpochBump {
        /// The table whose epoch advances.
        table: String,
    },
    /// A delete, logged by row *values* (the live session already resolved
    /// the `WHERE`): replay removes exactly these rows and re-runs summary
    /// maintenance through the same counting-delta paths.
    Delete {
        /// Target table.
        table: String,
        /// The removed rows.
        rows: Vec<Vec<Value>>,
    },
    /// An update, logged as positionally-paired pre-/post-image rows.
    Update {
        /// Target table.
        table: String,
        /// The removed pre-images.
        old_rows: Vec<Vec<Value>>,
        /// The inserted post-images.
        new_rows: Vec<Vec<Value>>,
    },
}

fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut e = Enc::new();
    match rec {
        WalRecord::CreateTable(t) => {
            e.u8(0);
            codec::encode_table(&mut e, t);
        }
        WalRecord::AddForeignKey {
            child_table,
            columns,
            parent_table,
        } => {
            e.u8(1);
            e.str(child_table);
            e.len_of(columns.len());
            for c in columns {
                e.str(c);
            }
            e.str(parent_table);
        }
        WalRecord::RegisterAst { name, query_sql } => {
            e.u8(2);
            e.str(name);
            e.str(query_sql);
        }
        WalRecord::DeregisterAst { name } => {
            e.u8(3);
            e.str(name);
        }
        WalRecord::Insert { table, rows } => {
            e.u8(4);
            e.str(table);
            codec::encode_rows(&mut e, rows);
        }
        WalRecord::Append { table, rows } => {
            e.u8(5);
            e.str(table);
            codec::encode_rows(&mut e, rows);
        }
        WalRecord::Refresh { name } => {
            e.u8(6);
            e.str(name);
        }
        WalRecord::EpochBump { table } => {
            e.u8(7);
            e.str(table);
        }
        WalRecord::Delete { table, rows } => {
            e.u8(8);
            e.str(table);
            codec::encode_rows(&mut e, rows);
        }
        WalRecord::Update {
            table,
            old_rows,
            new_rows,
        } => {
            e.u8(9);
            e.str(table);
            codec::encode_rows(&mut e, old_rows);
            codec::encode_rows(&mut e, new_rows);
        }
    }
    e.buf
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, CodecError> {
    let mut d = Dec::new(payload);
    let rec = match d.u8()? {
        0 => WalRecord::CreateTable(codec::decode_table(&mut d)?),
        1 => {
            let child_table = d.str()?;
            let n = d.count()?;
            let mut columns = Vec::with_capacity(n.min(1 << 10));
            for _ in 0..n {
                columns.push(d.str()?);
            }
            let parent_table = d.str()?;
            WalRecord::AddForeignKey {
                child_table,
                columns,
                parent_table,
            }
        }
        2 => WalRecord::RegisterAst {
            name: d.str()?,
            query_sql: d.str()?,
        },
        3 => WalRecord::DeregisterAst { name: d.str()? },
        4 => WalRecord::Insert {
            table: d.str()?,
            rows: codec::decode_rows(&mut d)?,
        },
        5 => WalRecord::Append {
            table: d.str()?,
            rows: codec::decode_rows(&mut d)?,
        },
        6 => WalRecord::Refresh { name: d.str()? },
        7 => WalRecord::EpochBump { table: d.str()? },
        8 => WalRecord::Delete {
            table: d.str()?,
            rows: codec::decode_rows(&mut d)?,
        },
        9 => WalRecord::Update {
            table: d.str()?,
            old_rows: codec::decode_rows(&mut d)?,
            new_rows: codec::decode_rows(&mut d)?,
        },
        other => {
            return Err(CodecError::Invalid {
                what: "wal record tag",
                detail: other.to_string(),
            })
        }
    };
    d.finish()?;
    Ok(rec)
}

fn frame(lsn: u64, payload: &[u8]) -> Vec<u8> {
    let mut head = Vec::with_capacity(FRAME_HEADER + payload.len());
    head.extend_from_slice(&lsn.to_le_bytes());
    head.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut sum_input = Vec::with_capacity(12 + payload.len());
    sum_input.extend_from_slice(&lsn.to_le_bytes());
    sum_input.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    sum_input.extend_from_slice(payload);
    head.extend_from_slice(&codec::fnv1a64(&sum_input).to_le_bytes());
    head.extend_from_slice(payload);
    head
}

/// The result of scanning a WAL file: the longest valid record prefix and
/// what (if anything) stopped the scan.
#[derive(Debug)]
pub struct ScanOutcome {
    /// `(lsn, record)` pairs of the valid prefix, in file order.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte length of the valid prefix (header included) — the offset the
    /// file should be truncated to before further appends.
    pub valid_len: u64,
    /// The file's actual length at scan time (equals `valid_len` when the
    /// log is clean).
    pub file_len: u64,
    /// Why the scan stopped early, when it did (torn/corrupt tail).
    pub torn: Option<String>,
    /// The LSN the next appended record should carry.
    pub next_lsn: u64,
}

/// Scan a WAL file, validating every frame. Returns `Ok(None)` when the
/// file does not exist. A missing/short/wrong magic header is typed
/// corruption — there is no valid prefix to fall back to.
pub fn scan(path: &Path) -> Result<Option<ScanOutcome>, PersistError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::io(format!("read {}", path.display()), &e)),
    };
    let file_len = bytes.len() as u64;
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(PersistError::Corrupt {
            what: "wal header",
            detail: format!(
                "bad or missing magic in {} ({} bytes)",
                path.display(),
                bytes.len()
            ),
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let mut torn = None;
    let mut prev_lsn: Option<u64> = None;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_HEADER {
            torn = Some(format!(
                "torn frame header at offset {pos}: {remaining} of {FRAME_HEADER} bytes"
            ));
            break;
        }
        let mut a8 = [0u8; 8];
        let mut a4 = [0u8; 4];
        a8.copy_from_slice(&bytes[pos..pos + 8]);
        let lsn = u64::from_le_bytes(a8);
        a4.copy_from_slice(&bytes[pos + 8..pos + 12]);
        let len = u32::from_le_bytes(a4);
        a8.copy_from_slice(&bytes[pos + 12..pos + 20]);
        let stored_sum = u64::from_le_bytes(a8);
        if len > MAX_RECORD_LEN {
            torn = Some(format!(
                "implausible record length {len} at offset {pos} (corrupt length field)"
            ));
            break;
        }
        let body_start = pos + FRAME_HEADER;
        if bytes.len() - body_start < len as usize {
            torn = Some(format!(
                "torn payload at offset {body_start}: {} of {len} bytes",
                bytes.len() - body_start
            ));
            break;
        }
        let payload = &bytes[body_start..body_start + len as usize];
        let mut sum_input = Vec::with_capacity(12 + payload.len());
        sum_input.extend_from_slice(&lsn.to_le_bytes());
        sum_input.extend_from_slice(&len.to_le_bytes());
        sum_input.extend_from_slice(payload);
        if codec::fnv1a64(&sum_input) != stored_sum {
            torn = Some(format!("checksum mismatch at offset {pos} (lsn {lsn})"));
            break;
        }
        if let Some(p) = prev_lsn {
            if lsn != p + 1 {
                torn = Some(format!(
                    "non-monotonic lsn at offset {pos}: {lsn} after {p}"
                ));
                break;
            }
        }
        match decode_record(payload) {
            Ok(rec) => records.push((lsn, rec)),
            Err(e) => {
                torn = Some(format!(
                    "undecodable record at offset {pos} (lsn {lsn}): {e}"
                ));
                break;
            }
        }
        prev_lsn = Some(lsn);
        pos = body_start + len as usize;
    }
    let next_lsn = records.last().map(|(l, _)| l + 1).unwrap_or(1);
    Ok(Some(ScanOutcome {
        records,
        valid_len: pos as u64,
        file_len,
        torn,
        next_lsn,
    }))
}

/// Write-path options.
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Retry policy for appends and resets.
    pub retry: RetryPolicy,
    /// fsync after every appended record (`true` in production; property
    /// tests may disable it for speed — the logical format is identical).
    pub fsync: bool,
}

impl Default for WalOptions {
    fn default() -> WalOptions {
        WalOptions {
            retry: RetryPolicy::default(),
            fsync: true,
        }
    }
}

/// An open WAL file positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Length of the committed (validated) prefix; every append attempt
    /// truncates back here first, so failures cannot stack partial frames.
    committed_len: u64,
    next_lsn: u64,
    opts: WalOptions,
}

impl Wal {
    /// Create a fresh WAL (truncating any existing file), with the next
    /// record to be appended carrying `next_lsn`.
    pub fn create(path: &Path, next_lsn: u64, opts: WalOptions) -> Result<Wal, PersistError> {
        let path_buf = path.to_path_buf();
        retry::with_backoff(opts.retry, |_| {
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)
                .map_err(|e| PersistError::io(format!("create {}", path.display()), &e))?;
            file.write_all(WAL_MAGIC)
                .map_err(|e| PersistError::io("write wal header", &e))?;
            file.sync_data()
                .map_err(|e| PersistError::io("sync wal header", &e))?;
            Ok(file)
        })
        .map(|file| Wal {
            file,
            path: path_buf,
            committed_len: WAL_MAGIC.len() as u64,
            next_lsn,
            opts,
        })
    }

    /// Open an existing WAL for appending after a [`scan`]: truncates any
    /// torn tail back to `outcome.valid_len` and continues at
    /// `outcome.next_lsn` (or later, if the caller's snapshot is newer).
    pub fn open_after_scan(
        path: &Path,
        outcome: &ScanOutcome,
        next_lsn: u64,
        opts: WalOptions,
    ) -> Result<Wal, PersistError> {
        let valid_len = outcome.valid_len;
        retry::with_backoff(opts.retry, |_| {
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .open(path)
                .map_err(|e| PersistError::io(format!("open {}", path.display()), &e))?;
            file.set_len(valid_len)
                .map_err(|e| PersistError::io("truncate torn wal tail", &e))?;
            file.seek(SeekFrom::Start(valid_len))
                .map_err(|e| PersistError::io("seek wal end", &e))?;
            file.sync_data()
                .map_err(|e| PersistError::io("sync truncated wal", &e))?;
            Ok(file)
        })
        .map(|file| Wal {
            file,
            path: path.to_path_buf(),
            committed_len: valid_len,
            next_lsn,
            opts,
        })
    }

    /// The LSN the next append will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The LSN of the last durably appended record (0 when none yet).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record durably: frame, write, flush (fsync unless
    /// disabled). Returns the record's LSN.
    ///
    /// Fail points: `wal-append` writes half the frame and errors (a torn
    /// write, left in place for recovery to truncate); `wal-fsync` fails
    /// the flush after a complete write. Transient IO errors retry under
    /// the configured policy, truncating back to the committed length
    /// before each attempt.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, PersistError> {
        let lsn = self.next_lsn;
        let bytes = frame(lsn, &encode_record(rec));
        let committed = self.committed_len;
        let file = &mut self.file;
        let fsync = self.opts.fsync;
        retry::with_backoff(self.opts.retry, |attempt| {
            if attempt > 0 {
                // A prior attempt may have left partial bytes; clear them.
                file.set_len(committed)
                    .map_err(|e| PersistError::io("rewind wal after failed append", &e))?;
            }
            file.seek(SeekFrom::Start(committed))
                .map_err(|e| PersistError::io("seek wal append position", &e))?;
            if failpoint::triggered("wal-append") {
                // Deterministic torn write: half the frame lands, then the
                // "device" fails. The debris stays for recovery to handle.
                let _ = file.write_all(&bytes[..bytes.len() / 2]);
                let _ = file.sync_data();
                return Err(PersistError::injected("wal-append"));
            }
            file.write_all(&bytes)
                .map_err(|e| PersistError::io("append wal record", &e))?;
            if fsync {
                if failpoint::triggered("wal-fsync") {
                    return Err(PersistError::injected("wal-fsync"));
                }
                file.sync_data()
                    .map_err(|e| PersistError::io("fsync wal record", &e))?;
            }
            Ok(())
        })?;
        self.committed_len = committed + bytes.len() as u64;
        self.next_lsn = lsn + 1;
        Ok(lsn)
    }

    /// Reset the log after a successful snapshot: truncate back to the
    /// header. LSNs continue from where they were (they are global), so
    /// even a *failed* reset is safe — recovery skips records the snapshot
    /// already covers.
    pub fn reset(&mut self) -> Result<(), PersistError> {
        let header = WAL_MAGIC.len() as u64;
        let file = &mut self.file;
        retry::with_backoff(self.opts.retry, |_| {
            file.set_len(header)
                .map_err(|e| PersistError::io("reset wal", &e))?;
            file.sync_data()
                .map_err(|e| PersistError::io("sync reset wal", &e))?;
            Ok(())
        })?;
        self.committed_len = header;
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "sumtab-wal-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn no_retry() -> WalOptions {
        WalOptions {
            retry: RetryPolicy::none(),
            fsync: true,
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                table: "t".into(),
                rows: vec![vec![Value::Int(1), Value::from("x")]],
            },
            WalRecord::RegisterAst {
                name: "st".into(),
                query_sql: "select k, count(*) as c from t group by k".into(),
            },
            WalRecord::Append {
                table: "t".into(),
                rows: vec![vec![Value::Null, Value::Double(2.5)]],
            },
            WalRecord::Refresh { name: "st".into() },
            WalRecord::EpochBump { table: "t".into() },
            WalRecord::Delete {
                table: "t".into(),
                rows: vec![vec![Value::Int(1), Value::from("x")]],
            },
            WalRecord::Update {
                table: "t".into(),
                old_rows: vec![vec![Value::Int(2), Value::from("y")]],
                new_rows: vec![vec![Value::Int(2), Value::from("z")]],
            },
            WalRecord::DeregisterAst { name: "st".into() },
        ]
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("wal.bin");
        let mut wal = Wal::create(&path, 1, no_retry()).unwrap();
        for (i, rec) in sample_records().iter().enumerate() {
            assert_eq!(wal.append(rec).unwrap(), i as u64 + 1);
        }
        let out = scan(&path).unwrap().unwrap();
        assert!(out.torn.is_none());
        assert_eq!(out.valid_len, out.file_len);
        assert_eq!(out.next_lsn, sample_records().len() as u64 + 1);
        let recs: Vec<WalRecord> = out.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(recs, sample_records());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_scans_to_none() {
        let dir = tmp_dir("missing");
        assert!(scan(&dir.join("nope.bin")).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_reported_and_truncatable() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.bin");
        let mut wal = Wal::create(&path, 1, no_retry()).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        drop(wal);
        let clean = scan(&path).unwrap().unwrap();
        // Simulate a crash mid-append: append garbage half-frame bytes.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[7u8; 11]);
        std::fs::write(&path, &bytes).unwrap();
        let out = scan(&path).unwrap().unwrap();
        assert_eq!(out.records.len(), clean.records.len());
        assert_eq!(out.valid_len, clean.valid_len);
        assert!(out.torn.as_deref().unwrap().contains("torn frame header"));
        // Reopening truncates the tail and appends cleanly after it.
        let mut wal = Wal::open_after_scan(&path, &out, out.next_lsn, no_retry()).unwrap();
        wal.append(&WalRecord::Refresh { name: "st".into() })
            .unwrap();
        let out2 = scan(&path).unwrap().unwrap();
        assert!(out2.torn.is_none());
        assert_eq!(out2.records.len(), clean.records.len() + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_corruption_is_typed_not_silent() {
        let dir = tmp_dir("header");
        let path = dir.join("wal.bin");
        let mut wal = Wal::create(&path, 1, no_retry()).unwrap();
        wal.append(&WalRecord::Refresh { name: "x".into() })
            .unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[3] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            scan(&path),
            Err(PersistError::Corrupt {
                what: "wal header",
                ..
            })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_preserves_lsn_continuity() {
        let dir = tmp_dir("reset");
        let path = dir.join("wal.bin");
        let mut wal = Wal::create(&path, 1, no_retry()).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.reset().unwrap();
        let next = sample_records().len() as u64 + 1;
        let lsn = wal
            .append(&WalRecord::Refresh { name: "st".into() })
            .unwrap();
        assert_eq!(lsn, next, "LSNs are global, not per-file");
        let out = scan(&path).unwrap().unwrap();
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].0, next);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_failpoint_leaves_torn_tail() {
        let dir = tmp_dir("failpoint");
        let path = dir.join("wal.bin");
        let mut wal = Wal::create(&path, 1, no_retry()).unwrap();
        wal.append(&sample_records()[0]).unwrap();
        {
            let _fp = failpoint::armed("wal-append");
            let err = wal.append(&sample_records()[1]).unwrap_err();
            assert_eq!(
                err,
                PersistError::Injected {
                    failpoint: "wal-append".into()
                }
            );
        }
        // The torn half-frame is on disk; scan truncates it away.
        let out = scan(&path).unwrap().unwrap();
        assert_eq!(out.records.len(), 1);
        assert!(out.torn.is_some(), "short write must be visible as torn");
        assert!(out.valid_len < out.file_len);
        // Transient fault (2 failures, then success) rides out under retry.
        failpoint::arm_times("wal-fsync", 2);
        let opts = WalOptions {
            retry: RetryPolicy {
                attempts: 3,
                base_delay_ms: 0,
                max_delay_ms: 0,
            },
            fsync: true,
        };
        let mut wal = Wal::open_after_scan(&path, &out, out.next_lsn, opts).unwrap();
        // NOTE: injected faults are non-transient by design, so a budgeted
        // fsync fault is NOT ridden out by retry — it surfaces, and the
        // budget then expires for the next append.
        assert!(wal.append(&sample_records()[1]).is_err());
        failpoint::disarm("wal-fsync");
        wal.append(&sample_records()[1]).unwrap();
        let out2 = scan(&path).unwrap().unwrap();
        assert!(out2.torn.is_none());
        assert_eq!(out2.records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
