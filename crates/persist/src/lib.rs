//! # sumtab-persist
//!
//! Durable session state for the `sumtab` workspace: an append-only,
//! length-prefixed and checksummed **write-ahead log** of logical session
//! records, plus periodic **snapshots** of the full catalog + data state
//! written with an atomic temp-file-then-rename protocol.
//!
//! The crate is deliberately low in the dependency graph — it knows the
//! catalog types ([`sumtab_catalog::Table`], [`sumtab_catalog::Value`], …)
//! so it can frame them on disk, but it knows nothing about sessions,
//! matching, or execution. The `sumtab` facade owns the mapping between
//! live session state and the [`snapshot::SnapshotState`] / [`wal::WalRecord`]
//! wire forms, and owns replay.
//!
//! ## Durability protocol (see DESIGN.md §12 for the full invariants)
//!
//! * Every logical mutation appends one [`wal::WalRecord`] frame:
//!   `[lsn u64][len u32][fnv1a-64 checksum][payload]`, flushed (and by
//!   default fsynced) before the operation is acknowledged as durable.
//! * Every `snapshot_every` records the facade serializes the whole state
//!   into `snapshot.bin` via write-temp → fsync → atomic rename, then
//!   resets the log. The snapshot carries the LSN of the last record it
//!   covers, so a crash between rename and reset is harmless: recovery
//!   skips WAL records whose LSN the snapshot already covers.
//! * Recovery loads the newest valid snapshot, replays the checksummed
//!   WAL prefix after it, and **truncates** any torn or corrupt tail at
//!   the last valid record. Corruption before the tail (a snapshot that
//!   fails its checksum, a WAL header with the wrong magic) is a typed
//!   [`PersistError::Corrupt`] — never a panic, never silently-loaded
//!   garbage.
//!
//! ## Operational fault hardening
//!
//! The IO layer carries [`failpoint`] hooks (`wal-append` short writes,
//! `wal-fsync` failures, `snapshot-write` / `snapshot-rename` failures) and
//! every write path runs under [`retry::with_backoff`], a bounded
//! retry-with-jittered-backoff helper for transient IO errors. Callers that
//! exhaust retries degrade explicitly (the facade drops to ephemeral mode)
//! rather than crashing.

#![forbid(unsafe_code)]

pub mod codec;
pub mod failpoint;
pub mod retry;
pub mod snapshot;
pub mod wal;

pub use codec::CodecError;
pub use retry::RetryPolicy;
pub use snapshot::SnapshotState;
pub use wal::{ScanOutcome, Wal, WalOptions, WalRecord};

/// Any failure the persistence layer can surface. IO errors are flattened
/// to `(kind, message)` so the type stays `Clone`/`PartialEq` for tests.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// An operating-system IO failure, annotated with what was being done.
    Io {
        /// The operation that failed (e.g. `append to wal.bin`).
        context: String,
        /// The OS error kind.
        kind: std::io::ErrorKind,
        /// The OS error message.
        message: String,
    },
    /// An injected fault from an armed [`failpoint`].
    Injected {
        /// The fail point that fired.
        failpoint: String,
    },
    /// On-disk state failed validation (bad magic, checksum mismatch,
    /// undecodable payload, trailing bytes). The data was NOT loaded.
    Corrupt {
        /// Which artifact was corrupt (`snapshot`, `wal header`, …).
        what: &'static str,
        /// Why it was rejected.
        detail: String,
    },
}

impl PersistError {
    /// Wrap an [`std::io::Error`] with the operation that hit it.
    pub fn io(context: impl Into<String>, e: &std::io::Error) -> PersistError {
        PersistError::Io {
            context: context.into(),
            kind: e.kind(),
            message: e.to_string(),
        }
    }

    /// An injected failure at the named fail point.
    pub fn injected(failpoint: impl Into<String>) -> PersistError {
        PersistError::Injected {
            failpoint: failpoint.into(),
        }
    }

    /// True for errors worth retrying (transient IO), false for injected
    /// faults and corruption (retrying cannot help; injected faults stay
    /// armed until the test disarms them, and re-reading corrupt bytes
    /// yields the same bytes).
    pub fn is_transient(&self) -> bool {
        matches!(self, PersistError::Io { .. })
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io {
                context,
                kind,
                message,
            } => write!(f, "io error during {context}: {message} ({kind:?})"),
            PersistError::Injected { failpoint } => {
                write!(f, "injected fault at failpoint `{failpoint}`")
            }
            PersistError::Corrupt { what, detail } => {
                write!(f, "corrupt {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> PersistError {
        PersistError::Corrupt {
            what: "encoded payload",
            detail: e.to_string(),
        }
    }
}
