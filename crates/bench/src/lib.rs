//! Shared fixtures for the benchmark suite and the `paper-experiments`
//! harness: a generated credit-card database with every figure's AST
//! materialized, plus prepared (original, rewritten) graph pairs.

#![forbid(unsafe_code)]
// Bench fixtures run over fixed inputs; a failed setup step should abort
// the run loudly, so panicking unwraps are intended here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sumtab::datagen::workloads::{FigureCase, FIGURES};
use sumtab::datagen::{generate, GenConfig};
use sumtab::{Catalog, Database, QgmGraph, RegisteredAst, Rewriter};

/// A prepared benchmark case: the original and rewritten graphs over a
/// shared database with the AST materialized.
pub struct PreparedCase {
    /// The figure descriptor.
    pub case: &'static FigureCase,
    /// The AST's backing-table name.
    pub ast_name: String,
    /// Original query graph.
    pub original: QgmGraph,
    /// Rewritten query graph (when the case matches).
    pub rewritten: Option<QgmGraph>,
    /// Rows in the AST's backing table.
    pub ast_rows: usize,
}

/// A full benchmark fixture.
pub struct Fixture {
    /// Schema.
    pub catalog: Catalog,
    /// Data, with every AST materialized.
    pub db: Database,
    /// Prepared figure cases.
    pub cases: Vec<PreparedCase>,
}

/// Build the fixture at the given fact-table scale.
pub fn prepare(transactions: usize) -> Fixture {
    let cfg = GenConfig {
        transactions,
        ..GenConfig::scale(transactions)
    };
    let (catalog, mut db) = generate(&cfg);
    let rewriter = Rewriter::new(&catalog);
    let mut cases = Vec::with_capacity(FIGURES.len());
    for case in FIGURES {
        let ast_name = format!("ast_{}", case.id.to_lowercase().replace('.', "_"));
        let ast = RegisteredAst::from_sql(&ast_name, case.ast, &catalog)
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        sumtab::engine::materialize(&ast_name, &ast.graph, &catalog, &mut db)
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        let original =
            sumtab::build_query(&sumtab::parser::parse_query(case.query).unwrap(), &catalog)
                .unwrap();
        let rewritten = rewriter
            .rewrite(&original, &ast)
            .unwrap_or_else(|e| panic!("{}: {e}", case.id))
            .map(|rw| rw.graph);
        assert_eq!(
            rewritten.is_some(),
            case.matches,
            "{}: match expectation violated at bench setup",
            case.id
        );
        let ast_rows = db.row_count(&ast_name);
        cases.push(PreparedCase {
            case,
            ast_name,
            original,
            rewritten,
            ast_rows,
        });
    }
    Fixture { catalog, db, cases }
}

/// Median wall-clock time of `runs` executions of `f`.
pub fn median_time(runs: usize, mut f: impl FnMut()) -> std::time::Duration {
    let mut samples: Vec<std::time::Duration> = (0..runs)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}
