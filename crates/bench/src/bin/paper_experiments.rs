//! The paper-experiments harness: regenerates every table and figure of the
//! paper's evaluation in one run and prints paper-vs-measured outcomes.
//! The results recorded in EXPERIMENTS.md come from this binary:
//!
//! ```text
//! cargo run --release -p sumtab-bench --bin paper-experiments
//! ```
//!
//! Sections:
//!   F*/T1  — the worked rewrite examples (Figures 2–14, Table 1)
//!   F12    — cube semantics (exact result table of Figure 12)
//!   P1     — the "orders of magnitude" speedup sweep (Section 1/8)
//!   P2     — coverage vs the syntactic single-block baseline (Section 1.2)
//!   P3     — matching overhead (Section 3)

// Measurement harness over fixed inputs: a failed setup step should abort
// the run loudly, so panicking unwraps are intended here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Instant;
use sumtab::datagen::workloads::{AST1, FIGURES, Q1};
use sumtab::datagen::{generate, GenConfig};
use sumtab::matcher::baseline::baseline_matches;
use sumtab::{format_table, render_graph_sql, sort_rows, Catalog, RegisteredAst, Rewriter, Value};
use sumtab_bench::{median_time, prepare};

fn main() {
    println!("=============================================================");
    println!(" sumtab — paper-experiments harness");
    println!(" Zaharioudakis et al., \"Answering Complex SQL Queries Using");
    println!(" Automatic Summary Tables\", SIGMOD 2000");
    println!("=============================================================\n");

    figures_section();
    figure12_section();
    speedup_section();
    coverage_section();
    overhead_section();
    ablation_section();
}

/// E-A1 (ablation): how much does the SELECT-merging normalization of
/// footnote 6 matter? We pose queries whose SQL nesting differs from the
/// AST definition's (derived tables vs flat blocks) — semantically equal,
/// syntactically asymmetric — and measure the match rate with and without
/// canonicalizing the QGM graphs before matching.
fn ablation_section() {
    println!("\n── E-A1: ablation — box-merge normalization (footnote 6) ───");
    let catalog = Catalog::credit_card_sample();
    let rewriter = Rewriter::new(&catalog);
    // (nested-form query, flat AST definition) pairs.
    let asymmetric: &[(&str, &str)] = &[
        (
            "select faid, count(*) as c from \
             (select faid from trans where qty > 2) as v group by faid",
            "select faid, count(*) as c from trans where qty > 2 group by faid",
        ),
        (
            "select v.s as state, count(*) as c from \
             (select state as s, flid as f from trans, loc where flid = lid) as v \
             group by v.s",
            "select state, flid, count(*) as c from trans, loc \
             where flid = lid group by state, flid",
        ),
        (
            "select y, sum(val) as v from \
             (select year(date) as y, qty * price as val from trans) as inner_q \
             group by y",
            "select year(date) as y, month(date) as m, sum(qty * price) as v \
             from trans group by year(date), month(date)",
        ),
    ];
    let mut with_norm = 0usize;
    let mut without_norm = 0usize;
    for (qs, as_) in asymmetric {
        for (normalize, counter) in [(true, &mut with_norm), (false, &mut without_norm)] {
            let build = |sql: &str| {
                sumtab::qgm::build_query_with_params(
                    &sumtab::parser::parse_query(sql).unwrap(),
                    &catalog,
                    normalize,
                )
                .unwrap()
            };
            let ast = RegisteredAst::new("a", build(as_));
            let q = build(qs);
            if matches!(rewriter.rewrite(&q, &ast), Ok(Some(_))) {
                *counter += 1;
            }
        }
    }
    println!(
        "  asymmetric-nesting pairs matched WITH normalization:    {with_norm}/{}\n  \
         asymmetric-nesting pairs matched WITHOUT normalization: {without_norm}/{}\n  \
         (derived-table blocks only align box-by-box after merging — the\n   \
         canonical-shape design decision of DESIGN.md §3)",
        asymmetric.len(),
        asymmetric.len()
    );
}

/// Figures 2–14 + Table 1: match outcome, rewrite shape, result check,
/// and per-case timing at 50k fact rows.
fn figures_section() {
    println!("── Worked examples (Figures 2–14, Table 1) ─────────────────");
    println!("   fixture: 50,000 transactions, every AST materialized\n");
    let fx = prepare(50_000);
    println!(
        "{:<7} {:<55} {:>7} {:>10} {:>10} {:>8}",
        "exp", "title", "match", "orig", "rewritten", "speedup"
    );
    for c in &fx.cases {
        let matched = if c.rewritten.is_some() { "yes" } else { "no" };
        match &c.rewritten {
            Some(rw) => {
                let orig_rows = sumtab::engine::execute(&c.original, &fx.db).unwrap();
                let new_rows = sumtab::engine::execute(rw, &fx.db).unwrap();
                let equal = rows_approx_eq(&sort_rows(orig_rows.clone()), &sort_rows(new_rows));
                let t_orig = median_time(5, || {
                    sumtab::engine::execute(&c.original, &fx.db).unwrap();
                });
                let t_new = median_time(5, || {
                    sumtab::engine::execute(rw, &fx.db).unwrap();
                });
                println!(
                    "{:<7} {:<55} {:>7} {:>10.2?} {:>10.2?} {:>7.1}x{}",
                    c.case.id,
                    c.case.title,
                    matched,
                    t_orig,
                    t_new,
                    t_orig.as_secs_f64() / t_new.as_secs_f64().max(1e-9),
                    if equal { "" } else { "  ✗ RESULTS DIFFER" },
                );
            }
            None => {
                println!(
                    "{:<7} {:<55} {:>7} {:>10} {:>10} {:>8}",
                    c.case.id, c.case.title, matched, "-", "-", "-"
                );
            }
        }
    }
    // Show one full rewrite, the paper's running example.
    if let Some(c) = fx.cases.iter().find(|c| c.case.id == "F2") {
        println!("\n  NewQ1 (Figure 2's rewrite, as produced):");
        println!("    {}", render_graph_sql(c.rewritten.as_ref().unwrap()));
    }
    println!();
}

/// Figure 12: cube query semantics over the paper's sample table.
fn figure12_section() {
    println!("── Figure 12: grouping-sets semantics ──────────────────────");
    let mut s = sumtab::SummarySession::new();
    s.run_script(
        "create table strans (flid int not null, year int not null, faid int not null);
         insert into strans values
            (1, 1990, 100), (1, 1991, 100), (1, 1991, 200), (1, 1991, 300),
            (1, 1992, 100), (1, 1992, 400), (2, 1991, 400), (2, 1991, 400);",
    )
    .unwrap();
    let res = s
        .query(
            "select flid, year, faid, count(*) as cnt from strans \
             group by grouping sets ((flid, year), (faid))",
        )
        .unwrap();
    println!("{}", format_table(&res.header, &sort_rows(res.rows)));
}

/// E-P1: the orders-of-magnitude speedup claim, swept over scales.
fn speedup_section() {
    println!("── E-P1: speedup sweep (Q1 via AST1) ───────────────────────");
    println!(
        "{:>12} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "fact rows", "AST rows", "ratio", "t(original)", "t(rewrite)", "speedup"
    );
    for &scale in &[10_000usize, 50_000, 200_000, 500_000] {
        let cfg = GenConfig {
            transactions: scale,
            ..GenConfig::scale(scale)
        };
        let (catalog, mut db) = generate(&cfg);
        let ast = RegisteredAst::from_sql("ast1", AST1, &catalog).unwrap();
        sumtab::engine::materialize("ast1", &ast.graph, &catalog, &mut db).unwrap();
        let q = sumtab::build_query(&sumtab::parser::parse_query(Q1).unwrap(), &catalog).unwrap();
        let rw = Rewriter::new(&catalog)
            .rewrite(&q, &ast)
            .unwrap()
            .unwrap()
            .graph;
        let t_orig = median_time(3, || {
            sumtab::engine::execute(&q, &db).unwrap();
        });
        let t_new = median_time(3, || {
            sumtab::engine::execute(&rw, &db).unwrap();
        });
        let ast_rows = db.row_count("ast1");
        println!(
            "{:>12} {:>10} {:>9.1}x {:>12.2?} {:>12.2?} {:>8.1}x",
            scale,
            ast_rows,
            scale as f64 / ast_rows as f64,
            t_orig,
            t_new,
            t_orig.as_secs_f64() / t_new.as_secs_f64().max(1e-9)
        );
    }
    println!();
}

/// E-P2: coverage matrix — paper's algorithm vs the syntactic baseline.
fn coverage_section() {
    println!("── E-P2: coverage vs syntactic single-block baseline [6] ───");
    let catalog = Catalog::credit_card_sample();
    let rewriter = Rewriter::new(&catalog);
    let mut ours = 0usize;
    let mut theirs = 0usize;
    println!("{:<7} {:>6} {:>10}", "exp", "ours", "baseline");
    for case in FIGURES {
        let ast = RegisteredAst::from_sql("b", case.ast, &catalog).unwrap();
        let q = sumtab::build_query(&sumtab::parser::parse_query(case.query).unwrap(), &catalog)
            .unwrap();
        let full = matches!(rewriter.rewrite(&q, &ast), Ok(Some(_)));
        let base = baseline_matches(&q, &ast.graph);
        ours += usize::from(full);
        theirs += usize::from(base);
        println!(
            "{:<7} {:>6} {:>10}",
            case.id,
            if full { "yes" } else { "no" },
            if base { "yes" } else { "no" }
        );
    }
    println!(
        "\n  totals: ours {ours}/{n}, baseline {theirs}/{n} — the gap is the \
         paper's contributions 1–3\n",
        n = FIGURES.len()
    );
}

/// E-P3: matching overhead per figure (pure matcher time).
fn overhead_section() {
    println!("── E-P3: matching/rewrite overhead ─────────────────────────");
    let catalog = Catalog::credit_card_sample();
    let rewriter = Rewriter::new(&catalog);
    println!("{:<7} {:>12}", "exp", "median");
    for case in FIGURES {
        let ast = RegisteredAst::from_sql("a", case.ast, &catalog).unwrap();
        let q = sumtab::build_query(&sumtab::parser::parse_query(case.query).unwrap(), &catalog)
            .unwrap();
        let t0 = Instant::now();
        let mut n = 0u32;
        while t0.elapsed().as_millis() < 50 {
            let _ = std::hint::black_box(rewriter.rewrite(&q, &ast));
            n += 1;
        }
        let per = t0.elapsed() / n.max(1);
        println!("{:<7} {:>12.2?}", case.id, per);
    }
    println!(
        "\n  (negligible next to execution times above — viable inside \
         an optimizer)"
    );
}

fn rows_approx_eq(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(x, y)| match (x, y) {
                    (Value::Double(p), Value::Double(q)) => {
                        let scale = p.abs().max(q.abs()).max(1.0);
                        (p - q).abs() <= scale * 1e-9
                    }
                    _ => x == y,
                })
        })
}
