//! Recovery time vs log length: how long [`sumtab::DurableSession::open`]
//! takes to rebuild a session from (a) a pure WAL of n logical records and
//! (b) a snapshot with an empty tail covering the same history — the two
//! endpoints of the snapshot-cadence trade-off EXPERIMENTS.md discusses.
//!
//! Each replayed record is an insert routed through summary maintenance,
//! so WAL replay re-runs the *logical* work of the original session;
//! snapshot recovery deserializes materialized state instead. The sweep
//! shows replay scaling linearly with log length while snapshot recovery
//! stays flat, which is the whole argument for taking snapshots.
//!
//! Emits `BENCH_recovery.json` at the repository root and aborts loudly if
//! recovery loses rows or if snapshot recovery fails to beat full replay
//! at the largest log length. Plain `harness = false` benchmark (no
//! external framework — the workspace builds offline); accepts `--quick`
//! for CI smoke runs.

// Bench fixtures run over fixed inputs; a failed setup step should abort
// the run loudly, so panicking unwraps are intended here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use sumtab::{DurableOptions, DurableSession};
use sumtab_bench::median_time;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "sumtab-bench-recovery-{}-{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Build a durability dir whose WAL holds the whole history: setup DDL,
/// an AST registration, and `n` maintained single-row inserts.
fn build_log(dir: &PathBuf, n: usize) {
    let mut s = DurableSession::open_with(
        dir,
        DurableOptions {
            snapshot_every: 0,
            ..DurableOptions::default()
        },
    )
    .unwrap();
    s.run_script(
        "create table t (k int not null, v int not null);
         create summary table st as (select k, sum(v) as sv, count(*) as c from t group by k);",
    )
    .unwrap();
    for i in 0..n {
        s.run_script(&format!("insert into t values ({}, {i})", i % 16))
            .unwrap();
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 7 };
    let sizes: &[usize] = if quick { &[32, 128] } else { &[64, 256, 1024] };
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>9}",
        "records", "wal_bytes", "replay", "snapshot", "ratio"
    );
    let mut records = Vec::new();
    let mut last_ratio = f64::INFINITY;
    for &n in sizes {
        let dir = scratch(&format!("wal-{n}"));
        build_log(&dir, n);
        let wal_bytes = std::fs::metadata(dir.join("wal.bin")).unwrap().len();
        // Recovery must be lossless before it is worth timing.
        {
            let s = DurableSession::open(&dir).unwrap();
            assert_eq!(s.session().session.db.row_count("t"), n, "lossless replay");
            assert_eq!(s.recovery_report().replayed as usize, n + 2);
        }
        let replay = median_time(reps, || {
            let s = DurableSession::open(&dir).unwrap();
            assert_eq!(s.session().session.db.row_count("t"), n);
        });

        // Same history, snapshotted: the log resets and recovery becomes a
        // deserialize instead of a re-execution.
        {
            let mut s = DurableSession::open(&dir).unwrap();
            s.snapshot_now().unwrap();
        }
        let snap_bytes = std::fs::metadata(dir.join("snapshot.bin")).unwrap().len();
        let snapshot = median_time(reps, || {
            let s = DurableSession::open(&dir).unwrap();
            assert_eq!(s.session().session.db.row_count("t"), n);
            assert_eq!(s.recovery_report().replayed, 0, "snapshot covers the log");
        });

        let ratio = replay.as_secs_f64() / snapshot.as_secs_f64().max(f64::EPSILON);
        last_ratio = ratio;
        println!(
            "{:>8} {:>12} {:>12.3?} {:>12.3?} {:>8.1}x",
            n, wal_bytes, replay, snapshot, ratio
        );
        records.push(format!(
            "{{\"records\": {n}, \"wal_bytes\": {wal_bytes}, \"snapshot_bytes\": {snap_bytes}, \
             \"replay_recovery_ns\": {}, \"snapshot_recovery_ns\": {}, \"ratio\": {ratio:.2}}}",
            replay.as_nanos(),
            snapshot.as_nanos(),
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
    let json = format!(
        "{{\n  \"bench\": \"recovery\",\n  \"quick\": {quick},\n  \"sweeps\": [\n    {}\n  ]\n}}\n",
        records.join(",\n    ")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_recovery.json");
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());
    assert!(
        last_ratio >= 1.0,
        "snapshot recovery must not be slower than replaying the full log \
         at {} records, got {last_ratio:.2}x",
        sizes[sizes.len() - 1]
    );
}
