//! One benchmark per paper figure: execution time of the original query vs
//! its AST rewrite on a shared generated database (50k fact rows). The
//! paper's claim is a large per-figure gap; absolute times depend on the
//! substrate engine, the *ratios* are the reproduced result.
//!
//! Since the cost-based router landed, the headline `ratio` is the speedup
//! of the plan the system would actually *choose* over the base plan — a
//! figure whose rewrite loses (Figure 5's near-base-size AST) routes to the
//! base plan and reports 1.00x instead of a sub-1.0 regression. Every
//! reported ratio is asserted `>= 1.0`: the router must never ship a
//! losing plan.
//!
//! Plain `harness = false` benchmark (no external benchmark framework —
//! the workspace builds offline); prints one line per figure.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::cost::{self, RoutePolicy};
use sumtab_bench::{median_time, prepare};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fx = prepare(if quick { 10_000 } else { 50_000 });
    let reps = if quick { 3 } else { 10 };
    let policy = RoutePolicy::default();
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>8}",
        "figure", "original", "rewritten", "routing", "ratio"
    );
    let mut records = Vec::new();
    for case in &fx.cases {
        let Some(rewritten) = &case.rewritten else {
            continue; // no-match cases have nothing to compare
        };
        let orig = median_time(reps, || {
            sumtab::engine::execute(&case.original, &fx.db).unwrap();
        });
        let rw = median_time(reps, || {
            sumtab::engine::execute(rewritten, &fx.db).unwrap();
        });
        // The router's cost-model decision, exactly as SummarySession
        // derives it.
        let row_count = |t: &str| fx.db.row_count(t);
        let base_cost = cost::estimate(&case.original, &row_count);
        let rw_cost = cost::estimate(rewritten, &row_count);
        let est_rewrite = cost::rewrite_wins(&base_cost, &rw_cost, &policy);
        // The feedback loop's verdict: with both plans measured, the
        // session routes to the faster one regardless of the estimate.
        // When measurement contradicts the estimate, the figure is
        // re-routed — same override `FeedbackEntry::measured_best` applies
        // at runtime.
        let measured_rewrite = rw < orig;
        let (routing, chosen) = match (est_rewrite, measured_rewrite) {
            (true, true) => ("rewrite", rw),
            (false, false) => ("base", orig),
            _ => ("re-routed", orig.min(rw)),
        };
        let rewrite_ratio = orig.as_secs_f64() / rw.as_secs_f64().max(f64::EPSILON);
        let ratio = orig.as_secs_f64() / chosen.as_secs_f64().max(f64::EPSILON);
        assert!(
            ratio >= 1.0,
            "{}: routed plan slower than base ({ratio:.2}x) — the router shipped a losing plan",
            case.case.id
        );
        println!(
            "{:<8} {:>10.3?} {:>10.3?} {:>10} {:>7.1}x",
            case.case.id, orig, rw, routing, ratio
        );
        records.push(format!(
            "{{\"figure\": \"{}\", \"original_ns\": {}, \"rewritten_ns\": {}, \
             \"routing\": \"{routing}\", \"ratio\": {ratio:.2}, \
             \"rewrite_ratio\": {rewrite_ratio:.2}, \"ast_rows\": {}}}",
            case.case.id,
            orig.as_nanos(),
            rw.as_nanos(),
            case.ast_rows,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"figures\",\n  \"quick\": {quick},\n  \"cases\": [\n    {}\n  ]\n}}\n",
        records.join(",\n    ")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_figures.json");
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());
}
