//! One Criterion benchmark per paper figure: execution time of the original
//! query vs its AST rewrite on a shared generated database (50k fact rows).
//! The paper's claim is a large per-figure gap; absolute times depend on
//! the substrate engine, the *ratios* are the reproduced result.

use criterion::{criterion_group, criterion_main, Criterion};
use sumtab_bench::prepare;

fn bench_figures(c: &mut Criterion) {
    let fx = prepare(50_000);
    for case in &fx.cases {
        let Some(rewritten) = &case.rewritten else {
            continue; // no-match cases have nothing to compare
        };
        let mut group = c.benchmark_group(format!("fig_{}", case.case.id));
        group.sample_size(10);
        group.bench_function("original", |b| {
            b.iter(|| sumtab::engine::execute(&case.original, &fx.db).unwrap())
        });
        group.bench_function("rewritten", |b| {
            b.iter(|| sumtab::engine::execute(rewritten, &fx.db).unwrap())
        });
        group.finish();
    }
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
