//! One benchmark per paper figure: execution time of the original query vs
//! its AST rewrite on a shared generated database (50k fact rows). The
//! paper's claim is a large per-figure gap; absolute times depend on the
//! substrate engine, the *ratios* are the reproduced result.
//!
//! Plain `harness = false` benchmark (no external benchmark framework —
//! the workspace builds offline); prints one line per figure.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab_bench::{median_time, prepare};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fx = prepare(if quick { 10_000 } else { 50_000 });
    let reps = if quick { 3 } else { 10 };
    println!(
        "{:<8} {:>12} {:>12} {:>8}",
        "figure", "original", "rewritten", "ratio"
    );
    let mut records = Vec::new();
    for case in &fx.cases {
        let Some(rewritten) = &case.rewritten else {
            continue; // no-match cases have nothing to compare
        };
        let orig = median_time(reps, || {
            sumtab::engine::execute(&case.original, &fx.db).unwrap();
        });
        let rw = median_time(reps, || {
            sumtab::engine::execute(rewritten, &fx.db).unwrap();
        });
        let ratio = orig.as_secs_f64() / rw.as_secs_f64().max(f64::EPSILON);
        println!(
            "{:<8} {:>10.3?} {:>10.3?} {:>7.1}x",
            case.case.id, orig, rw, ratio
        );
        records.push(format!(
            "{{\"figure\": \"{}\", \"original_ns\": {}, \"rewritten_ns\": {}, \
             \"ratio\": {ratio:.2}, \"ast_rows\": {}}}",
            case.case.id,
            orig.as_nanos(),
            rw.as_nanos(),
            case.ast_rows,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"figures\",\n  \"quick\": {quick},\n  \"cases\": [\n    {}\n  ]\n}}\n",
        records.join(",\n    ")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_figures.json");
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());
}
