//! One benchmark per paper figure: execution time of the original query vs
//! its AST rewrite on a shared generated database (50k fact rows). The
//! paper's claim is a large per-figure gap; absolute times depend on the
//! substrate engine, the *ratios* are the reproduced result.
//!
//! Plain `harness = false` benchmark (no external benchmark framework —
//! the workspace builds offline); prints one line per figure.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab_bench::{median_time, prepare};

fn main() {
    let fx = prepare(50_000);
    println!(
        "{:<8} {:>12} {:>12} {:>8}",
        "figure", "original", "rewritten", "ratio"
    );
    for case in &fx.cases {
        let Some(rewritten) = &case.rewritten else {
            continue; // no-match cases have nothing to compare
        };
        let orig = median_time(10, || {
            sumtab::engine::execute(&case.original, &fx.db).unwrap();
        });
        let rw = median_time(10, || {
            sumtab::engine::execute(rewritten, &fx.db).unwrap();
        });
        let ratio = orig.as_secs_f64() / rw.as_secs_f64().max(f64::EPSILON);
        println!(
            "{:<8} {:>10.3?} {:>10.3?} {:>7.1}x",
            case.case.id, orig, rw, ratio
        );
    }
}
