//! Matching cost at scale: per-query matching latency against a growing
//! population of registered ASTs, with exactly one matchable candidate —
//! the regime the fast path is built for (a warehouse accumulates many
//! summary tables; any one query can use few of them).
//!
//! Two sweeps per population size:
//!
//! * **unfiltered serial** — [`Rewriter::rewrite_all_unfiltered`], the
//!   pre-fast-path behaviour: every AST through the full navigator;
//! * **filtered parallel** — [`Rewriter::rewrite_all`]: signature filter
//!   first, survivors fanned out across the thread pool.
//!
//! Emits `BENCH_matching.json` at the repository root and aborts loudly if
//! the 1000-AST speedup drops below 5× (the acceptance floor; in practice
//! it is far higher, since a signature test is nanoseconds and a navigator
//! run is microseconds).
//!
//! Plain `harness = false` benchmark (no external benchmark framework —
//! the workspace builds offline); accepts `--quick` for CI smoke runs.

// Bench fixtures run over fixed inputs; a failed setup step should abort
// the run loudly, so panicking unwraps are intended here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sumtab::catalog::{Column, SqlType, Table};
use sumtab::{Catalog, RegisteredAst, Rewriter};
use sumtab_bench::median_time;

/// One fact table per AST so exactly one candidate survives the filter.
fn build_population(n: usize) -> (Catalog, Vec<RegisteredAst>) {
    let mut catalog = Catalog::new();
    for i in 0..n {
        catalog
            .add_table(Table::new(
                &format!("t{i:03}"),
                vec![
                    Column::new("k", SqlType::Int),
                    Column::new("v", SqlType::Int),
                ],
            ))
            .unwrap();
    }
    let asts = (0..n)
        .map(|i| {
            RegisteredAst::from_sql(
                &format!("ast{i:03}"),
                &format!("select k, count(*) as c, sum(v) as s from t{i:03} group by k"),
                &catalog,
            )
            .unwrap()
        })
        .collect();
    (catalog, asts)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 5 } else { 25 };
    let sizes = [10usize, 100, 1000];
    println!(
        "{:>6} {:>14} {:>14} {:>9} {:>10} {:>10}",
        "asts", "unfiltered", "filtered", "speedup", "nav_runs", "rejected"
    );
    let mut records = Vec::new();
    let mut speedup_at_1000 = f64::INFINITY;
    for n in sizes {
        let (catalog, asts) = build_population(n);
        let rewriter = Rewriter::new(&catalog);
        let query = sumtab::build_query(
            &sumtab::parser::parse_query("select k, sum(v) as s from t000 group by k").unwrap(),
            &catalog,
        )
        .unwrap();
        // Sanity: both paths agree and exactly one AST matches.
        let base = rewriter.rewrite_all_unfiltered(&query, &asts);
        let fast = rewriter.rewrite_all(&query, &asts);
        assert_eq!(base.len(), 1, "exactly one matchable AST by construction");
        assert_eq!(
            base.iter().map(|r| &r.ast_name).collect::<Vec<_>>(),
            fast.iter().map(|r| &r.ast_name).collect::<Vec<_>>(),
            "filter must not change the result"
        );

        let unfiltered = median_time(reps, || {
            let _ = rewriter.rewrite_all_unfiltered(&query, &asts);
        });
        let filtered = median_time(reps, || {
            let _ = rewriter.rewrite_all(&query, &asts);
        });
        let nav_before = sumtab::matcher::stats::navigator_runs();
        let rej_before = sumtab::matcher::stats::filter_rejections();
        let _ = rewriter.rewrite_all(&query, &asts);
        let nav_runs = sumtab::matcher::stats::navigator_runs() - nav_before;
        let rejected = sumtab::matcher::stats::filter_rejections() - rej_before;

        let speedup = unfiltered.as_secs_f64() / filtered.as_secs_f64().max(f64::EPSILON);
        if n == 1000 {
            speedup_at_1000 = speedup;
        }
        println!(
            "{:>6} {:>12.3?} {:>12.3?} {:>8.1}x {:>10} {:>10}",
            n, unfiltered, filtered, speedup, nav_runs, rejected
        );
        records.push(format!(
            "{{\"asts\": {n}, \"matchable\": 1, \
             \"unfiltered_serial_ns\": {}, \"filtered_parallel_ns\": {}, \
             \"speedup\": {speedup:.2}, \
             \"navigator_runs\": {nav_runs}, \"filter_rejections\": {rejected}}}",
            unfiltered.as_nanos(),
            filtered.as_nanos(),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"filtering\",\n  \"quick\": {quick},\n  \"sweeps\": [\n    {}\n  ]\n}}\n",
        records.join(",\n    ")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_matching.json");
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());
    assert!(
        speedup_at_1000 >= 5.0,
        "fast path must be at least 5x faster at 1000 ASTs, got {speedup_at_1000:.1}x"
    );
}
