//! Experiment E-P1 (the paper's headline claim): orders-of-magnitude
//! speedup from answering Q1 via AST1, swept over fact-table scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sumtab::datagen::workloads::{AST1, Q1};
use sumtab::datagen::{generate, GenConfig};
use sumtab::{RegisteredAst, Rewriter};

fn bench_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("speedup_q1");
    group.sample_size(10);
    for &scale in &[10_000usize, 50_000, 200_000] {
        let cfg = GenConfig {
            transactions: scale,
            ..GenConfig::scale(scale)
        };
        let (catalog, mut db) = generate(&cfg);
        let ast = RegisteredAst::from_sql("ast1", AST1, &catalog).unwrap();
        sumtab::engine::materialize("ast1", &ast.graph, &catalog, &mut db).unwrap();
        let q = sumtab::build_query(&sumtab::parser::parse_query(Q1).unwrap(), &catalog).unwrap();
        let rw = Rewriter::new(&catalog).rewrite(&q, &ast).unwrap().graph;
        group.throughput(Throughput::Elements(scale as u64));
        group.bench_with_input(BenchmarkId::new("original", scale), &scale, |b, _| {
            b.iter(|| sumtab::engine::execute(&q, &db).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rewritten", scale), &scale, |b, _| {
            b.iter(|| sumtab::engine::execute(&rw, &db).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
