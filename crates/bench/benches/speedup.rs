//! Experiment E-P1 (the paper's headline claim): orders-of-magnitude
//! speedup from answering Q1 via AST1, swept over fact-table scales.
//!
//! Plain `harness = false` benchmark (no external benchmark framework —
//! the workspace builds offline); prints one line per scale.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::datagen::workloads::{AST1, Q1};
use sumtab::datagen::{generate, GenConfig};
use sumtab::{RegisteredAst, Rewriter};
use sumtab_bench::median_time;

fn main() {
    println!(
        "{:<10} {:>12} {:>12} {:>8}",
        "scale", "original", "rewritten", "speedup"
    );
    for &scale in &[10_000usize, 50_000, 200_000] {
        let cfg = GenConfig {
            transactions: scale,
            ..GenConfig::scale(scale)
        };
        let (catalog, mut db) = generate(&cfg);
        let ast = RegisteredAst::from_sql("ast1", AST1, &catalog).unwrap();
        sumtab::engine::materialize("ast1", &ast.graph, &catalog, &mut db).unwrap();
        let q = sumtab::build_query(&sumtab::parser::parse_query(Q1).unwrap(), &catalog).unwrap();
        let rw = Rewriter::new(&catalog)
            .rewrite(&q, &ast)
            .unwrap()
            .expect("Q1 must match AST1")
            .graph;
        let orig = median_time(10, || {
            sumtab::engine::execute(&q, &db).unwrap();
        });
        let rewr = median_time(10, || {
            sumtab::engine::execute(&rw, &db).unwrap();
        });
        let ratio = orig.as_secs_f64() / rewr.as_secs_f64().max(f64::EPSILON);
        println!(
            "{:<10} {:>10.3?} {:>10.3?} {:>7.1}x",
            scale, orig, rewr, ratio
        );
    }
}
