//! Incremental maintenance vs full refresh: the cost of keeping a summary
//! table fresh under single-statement DELETEs and UPDATEs, as a function of
//! base-table size.
//!
//! The counting-delta path aggregates only the delta rows and patches the
//! affected groups in place; the refresh path re-aggregates the whole base
//! table. The sweep shows the incremental path staying (near-)flat while
//! refresh scales with base cardinality — the argument for the
//! maintainability analyzer doing its static work at registration time.
//!
//! Emits `BENCH_maintenance.json` at the repository root and aborts loudly
//! if incremental maintenance fails to beat full refresh at the largest
//! base size, or if the maintained summary ever diverges from a
//! recomputation. Plain `harness = false` benchmark; accepts `--quick`.

// Bench fixtures run over fixed inputs; a failed setup step should abort
// the run loudly, so panicking unwraps are intended here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sumtab::qgm::MaintStrategy;
use sumtab::{failpoint, sort_rows, SummarySession, Value};
use sumtab_bench::median_time;

const GROUPS: u64 = 16;

/// A session with `n` fact rows and one counting-delta summary.
fn build(n: usize) -> SummarySession {
    let mut s = SummarySession::new();
    s.run_script("create table f (id int not null, k int not null, v int not null);")
        .unwrap();
    // Bulk-load in chunks to keep statement sizes bounded.
    let mut vals = Vec::with_capacity(n);
    for i in 0..n as u64 {
        vals.push(format!("({i}, {}, {})", i % GROUPS, (i * 7) % 100));
    }
    for chunk in vals.chunks(512) {
        s.run_script(&format!("insert into f values {}", chunk.join(", ")))
            .unwrap();
    }
    s.run_script(
        "create summary table st as (select k, sum(v) as sv, count(*) as c from f group by k);",
    )
    .unwrap();
    let m = s.maintainability("st").unwrap();
    assert_eq!(
        m.strategy_for("f"),
        MaintStrategy::CountingDelta,
        "the bench summary must be counting-delta certified"
    );
    s
}

fn ground_truth(s: &mut SummarySession) -> Vec<Vec<Value>> {
    sort_rows(
        s.query_no_rewrite("select k, sum(v) as sv, count(*) as c from f group by k")
            .unwrap()
            .rows,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 7 };
    let sizes: &[usize] = if quick { &[512, 2048] } else { &[1024, 8192, 32768] };
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14} {:>9}",
        "rows", "del_incr", "del_refresh", "upd_incr", "upd_refresh", "ratio"
    );
    let mut records = Vec::new();
    let mut last_ratio = 0.0f64;
    for &n in sizes {
        // Incremental DELETE: one row out of `n`, counting-delta merge.
        // Each rep deletes a distinct id so the statement always hits.
        let mut s = build(n);
        let mut next = 0u64;
        let delete_incr = median_time(reps, || {
            s.run_script(&format!("delete from f where id = {next}"))
                .unwrap();
            next += 1;
        });
        // The maintained summary must still answer exactly.
        let expected = ground_truth(&mut s);
        let got = s
            .query("select k, sum(v) as sv, count(*) as c from f group by k")
            .unwrap();
        assert_eq!(got.used_ast.as_deref(), Some("st"), "summary went stale");
        assert_eq!(sort_rows(got.rows), expected, "maintained summary diverged");

        // The same DELETE statement with the incremental path fault-forced
        // onto a full refresh: everything else (WHERE resolution, base
        // mutation) is identical, so the difference is purely
        // maintenance-by-delta vs maintenance-by-recompute.
        let delete_refresh = median_time(reps, || {
            failpoint::arm_times("maintain", 1);
            s.run_script(&format!("delete from f where id = {next}"))
                .unwrap();
            next += 1;
        });
        failpoint::disarm_all();

        // Incremental UPDATE: delete + insert of signed deltas. Target ids
        // from the middle of the table so every rep hits a live row.
        let mut upd = n as u64 / 2;
        let update_incr = median_time(reps, || {
            s.run_script(&format!("update f set v = 3 where id = {upd}"))
                .unwrap();
            upd += 1;
        });
        let update_refresh = median_time(reps, || {
            failpoint::arm_times("maintain", 1);
            s.run_script(&format!("update f set v = 5 where id = {upd}"))
                .unwrap();
            upd += 1;
        });
        failpoint::disarm_all();

        let ratio = (delete_refresh.as_secs_f64() + update_refresh.as_secs_f64())
            / (delete_incr.as_secs_f64() + update_incr.as_secs_f64()).max(f64::EPSILON);
        last_ratio = ratio;
        println!(
            "{:>8} {:>12.3?} {:>12.3?} {:>12.3?} {:>12.3?} {:>8.1}x",
            n, delete_incr, delete_refresh, update_incr, update_refresh, ratio
        );
        records.push(format!(
            "{{\"rows\": {n}, \"delete_incremental_ns\": {}, \"delete_refresh_ns\": {}, \
             \"update_incremental_ns\": {}, \"update_refresh_ns\": {}, \
             \"refresh_over_incremental\": {ratio:.2}}}",
            delete_incr.as_nanos(),
            delete_refresh.as_nanos(),
            update_incr.as_nanos(),
            update_refresh.as_nanos(),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"maintenance\",\n  \"quick\": {quick},\n  \"sweeps\": [\n    {}\n  ]\n}}\n",
        records.join(",\n    ")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_maintenance.json");
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());
    assert!(
        last_ratio > 1.0,
        "incremental maintenance must beat full refresh at {} rows, got {last_ratio:.2}x",
        sizes[sizes.len() - 1]
    );
}
