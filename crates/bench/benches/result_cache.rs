//! Result-cache benchmark: repeated identical queries through a
//! [`sumtab::SummarySession`], cold (result cache disabled) vs warm
//! (cached). The acceptance bar is a >= 10x win on the repeat path; the
//! bench also proves the cache is *correctly invalidated* — an append to a
//! base table bumps its epoch, after which the cached result must not be
//! served.
//!
//! Emits `BENCH_result_cache.json` at the repository root. Plain
//! `harness = false` benchmark; accepts `--quick` for CI smoke runs.

// Benches run over fixed inputs; unwrap/expect failures should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::catalog::SummaryTableDef;
use sumtab::engine::backing_table_schema;
use sumtab::{Date, RegisteredAst, SummarySession, Value};
use sumtab_bench::{median_time, prepare};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 10_000 } else { 50_000 };
    let reps = if quick { 5 } else { 15 };
    let fx = prepare(scale);

    // Promote the fixture's materialized ASTs into catalog-registered
    // summary tables so `with_data` re-registers them for rewriting.
    let mut catalog = fx.catalog;
    let mut defs = Vec::new();
    for case in &fx.cases {
        let ast = RegisteredAst::from_sql(&case.ast_name, case.case.ast, &catalog).unwrap();
        let backing = backing_table_schema(&case.ast_name, &ast.graph, &catalog).unwrap();
        defs.push((
            SummaryTableDef {
                name: case.ast_name.clone(),
                query_sql: case.case.ast.to_string(),
            },
            backing,
        ));
    }
    for (def, backing) in defs {
        catalog.add_summary_table(def, backing).unwrap();
    }

    // The heaviest figure (largest AST backing table — Figure 5's shape):
    // its cold execution does real work whichever way the router sends it.
    let heavy = fx
        .cases
        .iter()
        .filter(|c| c.rewritten.is_some())
        .max_by_key(|c| c.ast_rows)
        .unwrap();
    let sql = heavy.case.query;

    let mut session = SummarySession::with_data(catalog, fx.db);
    let routing = session
        .plan_detail(sql)
        .unwrap()
        .routing
        .label()
        .to_string();

    // Cold: result cache off; every repetition plans (cached pair) and
    // executes.
    session.set_result_cache_capacity(0);
    session.query(sql).unwrap();
    let cold = median_time(reps, || {
        session.query(sql).unwrap();
    });

    // Warm: result cache on; one populating run, then every repetition is
    // a cache hit.
    session.set_result_cache_capacity(16);
    session.query(sql).unwrap();
    let warm = median_time(reps, || {
        session.query(sql).unwrap();
    });
    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(f64::EPSILON);
    let hits = session.result_cache_stats().hits;
    assert!(hits >= reps as u64, "warm runs must be cache hits");

    // Epoch invalidation: appending to the fact table bumps its epoch;
    // the cached result's snapshot no longer validates, so the next
    // identical query must re-execute, not serve stale rows.
    let hits_before = session.result_cache_stats().hits;
    session
        .append(
            "trans",
            vec![vec![
                Value::Int(scale as i64 + 1_000_000),
                Value::Int(1),
                Value::Int(1),
                Value::Int(1),
                Value::Date(Date::new(2000, 1, 1).unwrap()),
                Value::Int(1),
                Value::Double(1.0),
                Value::Double(0.0),
            ]],
        )
        .unwrap();
    session.query(sql).unwrap();
    let invalidated = session.result_cache_stats().hits == hits_before;
    assert!(
        invalidated,
        "a base-table append must invalidate the cached result"
    );
    // ... and the re-executed result is re-cached at the new epochs.
    session.query(sql).unwrap();
    assert_eq!(session.result_cache_stats().hits, hits_before + 1);

    println!(
        "{:<10} routing={routing:<10} cold {cold:>10.3?}  warm {warm:>10.3?}  {speedup:>8.1}x",
        heavy.case.id
    );
    assert!(
        speedup >= 10.0,
        "repeated identical queries must be >= 10x faster with the result \
         cache; measured {speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"result_cache\",\n  \"quick\": {quick},\n  \
         \"figure\": \"{}\",\n  \"routing\": \"{routing}\",\n  \
         \"cold_ns\": {},\n  \"warm_ns\": {},\n  \"speedup\": {speedup:.2},\n  \
         \"epoch_invalidation\": {invalidated}\n}}\n",
        heavy.case.id,
        cold.as_nanos(),
        warm.as_nanos(),
    );
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_result_cache.json");
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());
}
