//! Executor benchmark: the morsel-parallel columnar path (`execute_with`,
//! pool size 4) against the serial row-at-a-time oracle (`execute_serial`)
//! over a scale-factor sweep of the generated star schema, plus the
//! base-plan vs AST-rewritten-plan gap under the new executor.
//!
//! Emits `BENCH_exec.json` at the repository root and aborts loudly if any
//! case's columnar-over-serial speedup at the biggest scale falls under
//! its per-case floor (see [`CASES`]) — regression bars for every executor
//! layer, not just the headline scan.
//!
//! Plain `harness = false` benchmark (no external benchmark framework —
//! the workspace builds offline); accepts `--quick` for CI smoke runs.

// Benches run over fixed inputs; unwrap/expect failures should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::engine::{execute_serial, execute_with, ExecOptions, DEFAULT_MORSEL_SIZE};
use sumtab::QgmGraph;
use sumtab_bench::{median_time, prepare};

/// (name, SQL, floor) triples exercising each executor layer: the fused
/// columnar scan, the fused join pipeline over a partitioned hash build,
/// the fused scan→aggregate grouping-sets fold, and top-k. The floor is
/// the minimum parallel-over-serial speedup tolerated at the biggest
/// scale — set well under steady-state measurements (large_scan ~3.5×,
/// join_group_by ~2–3× since the executor-v2 fused pipeline, grouping_sets
/// ~3–4× with the columnar aggregation kernels, top_k ~6–8×) so a real
/// regression trips it, not scheduler jitter. Every case must clear 1.5×:
/// the parallel path is the default executor and has no business losing
/// to the row-at-a-time interpreter anywhere.
const CASES: &[(&str, &str, f64)] = &[
    (
        "large_scan",
        "select tid, qty * price * (1 - disc) as amt from trans \
         where qty >= 2 and disc < 0.1",
        3.0,
    ),
    (
        "join_group_by",
        "select country, year(date) as y, sum(qty * price) as rev, count(*) as cnt \
         from trans, loc where flid = lid group by country, year(date)",
        1.5,
    ),
    (
        "grouping_sets",
        "select flid, fpgid, sum(qty) as q, count(*) as c from trans \
         group by grouping sets ((flid, fpgid), (flid), ())",
        2.0,
    ),
    (
        "top_k",
        "select tid, price from trans order by price desc, tid limit 10",
        3.0,
    ),
];

fn graph(sql: &str, catalog: &sumtab::Catalog) -> QgmGraph {
    sumtab::build_query(&sumtab::parser::parse_query(sql).unwrap(), catalog).unwrap()
}

fn main() {
    // Timing is only meaningful with the verifier gates off. Release builds
    // keep them off unless SUMTAB_VERIFY=1 explicitly opts in; a debug-assert
    // build (or a stray env var) would silently tax every measurement, so
    // abort rather than publish tainted numbers.
    let verify_on = sumtab::qgm::verify::runtime_checks_enabled();
    assert!(
        !verify_on || sumtab::qgm::verify::env_verify_requested(),
        "bench must run with verifier gates off: build with --release and \
         leave SUMTAB_VERIFY unset"
    );
    if verify_on {
        eprintln!("warning: SUMTAB_VERIFY=1 set; timings include verifier overhead");
    }

    let quick = std::env::args().any(|a| a == "--quick");
    let scales: &[usize] = if quick { &[20_000] } else { &[50_000, 200_000] };
    let reps = if quick { 3 } else { 7 };
    let opts = ExecOptions {
        pool_size: 4,
        morsel_size: DEFAULT_MORSEL_SIZE,
    };

    let mut scale_records = Vec::new();
    let mut biggest_scale_speedups: Vec<(&str, f64, f64)> = Vec::new();
    for &scale in scales {
        let fx = prepare(scale);
        println!("scale {scale}:");
        println!(
            "  {:<16} {:>12} {:>12} {:>9}",
            "case", "serial", "parallel", "speedup"
        );
        let mut case_records = Vec::new();
        for (name, sql, floor) in CASES {
            let g = graph(sql, &fx.catalog);
            // Results must agree before timing means anything.
            assert_eq!(
                execute_with(&g, &fx.db, &opts).unwrap(),
                execute_serial(&g, &fx.db).unwrap(),
                "{name}: executor paths disagree"
            );
            let serial = median_time(reps, || {
                execute_serial(&g, &fx.db).unwrap();
            });
            let parallel = median_time(reps, || {
                execute_with(&g, &fx.db, &opts).unwrap();
            });
            let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(f64::EPSILON);
            println!("  {name:<16} {serial:>10.3?} {parallel:>10.3?} {speedup:>8.2}x");
            if scale == *scales.last().unwrap() {
                biggest_scale_speedups.push((name, speedup, *floor));
            }
            case_records.push(format!(
                "{{\"case\": \"{name}\", \"serial_ns\": {}, \"parallel_ns\": {}, \
                 \"speedup\": {speedup:.2}, \"floor\": {floor:.1}}}",
                serial.as_nanos(),
                parallel.as_nanos(),
            ));
        }

        // Base plan vs AST-rewritten plan, both on the parallel executor:
        // the paper's gap must survive the engine swap.
        let mut rewrite_records = Vec::new();
        for case in fx.cases.iter().filter(|c| c.rewritten.is_some()).take(3) {
            let rewritten = case.rewritten.as_ref().unwrap();
            let base = median_time(reps, || {
                execute_with(&case.original, &fx.db, &opts).unwrap();
            });
            let rw = median_time(reps, || {
                execute_with(rewritten, &fx.db, &opts).unwrap();
            });
            let ratio = base.as_secs_f64() / rw.as_secs_f64().max(f64::EPSILON);
            println!(
                "  {:<16} {base:>10.3?} {rw:>10.3?} {ratio:>8.1}x  (base vs rewritten)",
                case.case.id
            );
            rewrite_records.push(format!(
                "{{\"figure\": \"{}\", \"base_ns\": {}, \"rewritten_ns\": {}, \
                 \"ratio\": {ratio:.2}, \"ast_rows\": {}}}",
                case.case.id,
                base.as_nanos(),
                rw.as_nanos(),
                case.ast_rows,
            ));
        }
        scale_records.push(format!(
            "{{\"transactions\": {scale}, \"cases\": [\n      {}\n    ], \"rewritten\": [\n      {}\n    ]}}",
            case_records.join(",\n      "),
            rewrite_records.join(",\n      ")
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"exec\",\n  \"quick\": {quick},\n  \"verify_gates\": {verify_on},\n  \
         \"pool_size\": {},\n  \"morsel_size\": {},\n  \"scales\": [\n    {}\n  ]\n}}\n",
        opts.pool_size,
        opts.morsel_size,
        scale_records.join(",\n    ")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_exec.json");
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());

    // Per-case floors at the biggest scale: a single blanket bar on one
    // case let the others regress unnoticed.
    for (name, speedup, floor) in &biggest_scale_speedups {
        assert!(
            speedup >= floor,
            "{name}: columnar executor must be >= {floor:.1}x the serial \
             interpreter at the biggest scale; measured {speedup:.2}x"
        );
    }
}
