//! Experiment E-P3: the matching/rewrite overhead itself (navigator +
//! match function + compensation construction), per figure. The paper's
//! algorithm runs inside the optimizer, so this must be microseconds-to-
//! milliseconds — negligible next to query execution.

use criterion::{criterion_group, criterion_main, Criterion};
use sumtab::datagen::workloads::FIGURES;
use sumtab::{Catalog, RegisteredAst, Rewriter};

fn bench_matching(c: &mut Criterion) {
    let catalog = Catalog::credit_card_sample();
    let mut group = c.benchmark_group("match_overhead");
    for case in FIGURES {
        let ast = RegisteredAst::from_sql("a", case.ast, &catalog).unwrap();
        let q = sumtab::build_query(&sumtab::parser::parse_query(case.query).unwrap(), &catalog)
            .unwrap();
        let rewriter = Rewriter::new(&catalog);
        group.bench_function(case.id, |b| b.iter(|| rewriter.rewrite(&q, &ast)));
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
