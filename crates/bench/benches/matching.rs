//! Experiment E-P3: the matching/rewrite overhead itself (navigator +
//! match function + compensation construction), per figure. The paper's
//! algorithm runs inside the optimizer, so this must be microseconds-to-
//! milliseconds — negligible next to query execution.
//!
//! Plain `harness = false` benchmark (no external benchmark framework —
//! the workspace builds offline); prints one line per figure.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::datagen::workloads::FIGURES;
use sumtab::{Catalog, RegisteredAst, Rewriter};
use sumtab_bench::median_time;

fn main() {
    let catalog = Catalog::credit_card_sample();
    println!("{:<8} {:>14}", "figure", "match+rewrite");
    for case in FIGURES {
        let ast = RegisteredAst::from_sql("a", case.ast, &catalog).unwrap();
        let q = sumtab::build_query(&sumtab::parser::parse_query(case.query).unwrap(), &catalog)
            .unwrap();
        let rewriter = Rewriter::new(&catalog);
        let t = median_time(200, || {
            let _ = rewriter.rewrite(&q, &ast);
        });
        println!("{:<8} {:>12.3?}", case.id, t);
    }
}
