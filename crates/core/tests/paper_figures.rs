//! End-to-end reproductions of every worked example in the paper
//! (Figures 2–14 and Table 1), executed against generated data:
//! each test matches the query against the AST, rewrites it, materializes
//! the AST, runs both forms, and asserts multiset-equal results.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab_catalog::{Catalog, Date, Value};
use sumtab_engine::{execute, materialize, Database};
use sumtab_matcher::{RegisteredAst, Rewriter};
use sumtab_parser::parse_query;
use sumtab_qgm::{build_query, render_graph_sql, BoxKind, QgmGraph};

/// Deterministic test data over the paper's credit-card schema: several
/// years, months, locations (USA and France), product groups, accounts.
fn setup() -> (Catalog, Database) {
    let cat = Catalog::credit_card_sample();
    let mut db = Database::new();
    db.insert(
        &cat,
        "loc",
        vec![
            vec![1.into(), "san jose".into(), "CA".into(), "USA".into()],
            vec![2.into(), "los angeles".into(), "CA".into(), "USA".into()],
            vec![3.into(), "austin".into(), "TX".into(), "USA".into()],
            vec![4.into(), "paris".into(), "IDF".into(), "France".into()],
        ],
    )
    .unwrap();
    db.insert(
        &cat,
        "pgroup",
        vec![
            vec![10.into(), "TV".into()],
            vec![11.into(), "Radio".into()],
            vec![12.into(), "Audio".into()],
        ],
    )
    .unwrap();
    db.insert(
        &cat,
        "cust",
        vec![
            vec![1000.into(), "alice".into(), 31.into()],
            vec![2000.into(), "bob".into(), 45.into()],
            vec![3000.into(), "carol".into(), 27.into()],
        ],
    )
    .unwrap();
    db.insert(
        &cat,
        "acct",
        vec![
            vec![100.into(), 1000.into(), "gold".into()],
            vec![200.into(), 2000.into(), "basic".into()],
            vec![300.into(), 3000.into(), "gold".into()],
        ],
    )
    .unwrap();
    // A small linear-congruential generator keeps the fixture deterministic
    // while producing a few hundred transactions spread over years/months.
    let mut state: u64 = 0x5eed_1234;
    let mut next = |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    let mut rows = Vec::new();
    for tid in 0..400i64 {
        let faid = [100i64, 200, 300][next(3) as usize];
        let flid = 1 + next(4) as i64;
        let fpgid = 10 + next(3) as i64;
        let year = 1989 + next(5) as i32;
        let month = 1 + next(12) as u8;
        let day = 1 + next(28) as u8;
        let qty = 1 + next(5) as i64;
        let price = 10.0 + next(200) as f64;
        let disc = (next(5) as f64) / 10.0;
        rows.push(vec![
            Value::Int(tid),
            Value::Int(faid),
            Value::Int(flid),
            Value::Int(fpgid),
            Value::Date(Date::new(year, month, day).unwrap()),
            Value::Int(qty),
            Value::Double(price),
            Value::Double(disc),
        ]);
    }
    db.insert(&cat, "trans", rows).unwrap();
    (cat, db)
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

/// Match `query_sql` against the AST defined by `ast_sql`; assert a rewrite
/// exists, that it reads the backing table (not the fact table, unless
/// `expect_fact` says otherwise), and that both forms produce identical
/// multisets. Returns the rewritten graph for further inspection.
fn check_rewrite(query_sql: &str, ast_sql: &str) -> QgmGraph {
    let (cat, mut db) = setup();
    let ast = RegisteredAst::from_sql("the_ast", ast_sql, &cat).unwrap();
    materialize("the_ast", &ast.graph, &cat, &mut db).unwrap();
    let q = build_query(&parse_query(query_sql).unwrap(), &cat).unwrap();
    let rewriter = Rewriter::new(&cat);
    let rw = rewriter
        .rewrite(&q, &ast)
        .unwrap()
        .unwrap_or_else(|| panic!("expected a match for:\n  {query_sql}\nagainst\n  {ast_sql}"));
    // The rewritten query must read the backing table.
    let reads_ast = rw
        .graph
        .boxes
        .iter()
        .any(|b| matches!(&b.kind, BoxKind::BaseTable { table } if table == "the_ast"));
    assert!(
        reads_ast,
        "rewrite must scan the AST:\n{}",
        render_graph_sql(&rw.graph)
    );
    let original = execute(&q, &db).unwrap();
    let rewritten = execute(&rw.graph, &db).unwrap();
    assert!(
        !original.is_empty(),
        "fixture produced an empty result — test would be vacuous: {query_sql}"
    );
    assert_eq!(
        sorted(original),
        sorted(rewritten),
        "results differ for:\n  {query_sql}\nrewritten:\n  {}",
        render_graph_sql(&rw.graph)
    );
    rw.graph
}

/// Assert that no rewrite exists.
fn check_no_match(query_sql: &str, ast_sql: &str) {
    let (cat, _) = setup();
    let ast = RegisteredAst::from_sql("the_ast", ast_sql, &cat).unwrap();
    let q = build_query(&parse_query(query_sql).unwrap(), &cat).unwrap();
    assert!(
        Rewriter::new(&cat).rewrite(&q, &ast).unwrap().is_none(),
        "expected NO match for:\n  {query_sql}\nagainst\n  {ast_sql}"
    );
}

// ---------------------------------------------------------------------------
// Figure 2: Q1 / AST1 → NewQ1
// ---------------------------------------------------------------------------

#[test]
fn fig02_q1_rollup_with_rejoin_and_having() {
    let g = check_rewrite(
        "select faid, state, year(date) as year, count(*) as cnt \
         from trans, loc where flid = lid and country = 'USA' \
         group by faid, state, year(date) having count(*) > 2",
        "select faid, flid, year(date) as year, count(*) as cnt \
         from trans group by faid, flid, year(date)",
    );
    // The rewrite re-joins Loc and re-groups (SUM over partial counts).
    assert!(g
        .boxes
        .iter()
        .any(|b| matches!(&b.kind, BoxKind::BaseTable { table } if table == "loc")));
    assert!(g.boxes.iter().any(|b| b.is_group_by()));
}

// ---------------------------------------------------------------------------
// Figure 5: Q2 / AST2 → NewQ2 (SELECT boxes with exact child matches)
// ---------------------------------------------------------------------------

#[test]
fn fig05_q2_rejoin_extra_child_and_derivation() {
    let g = check_rewrite(
        "select aid, status, qty * price * (1 - disc) as amt \
         from trans, pgroup, acct \
         where pgid = fpgid and faid = aid and price > 100 and disc > 0.1 and pgname = 'TV'",
        "select tid, faid, fpgid, status, country, price, qty, disc, qty * price as value \
         from trans, loc, acct where lid = flid and faid = aid and disc > 0.1",
    );
    // PGroup is rejoined; Loc (the AST's extra child) is not re-read.
    assert!(g
        .boxes
        .iter()
        .any(|b| matches!(&b.kind, BoxKind::BaseTable { table } if table == "pgroup")));
    assert!(!g
        .boxes
        .iter()
        .any(|b| matches!(&b.kind, BoxKind::BaseTable { table } if table == "loc")));
}

#[test]
fn fig05_extra_child_without_ri_is_rejected() {
    // Same AST shape, but joining Loc on a non-PK column: the extra join is
    // no longer provably lossless, so no match may be produced.
    check_no_match(
        "select aid, status from trans, acct where faid = aid",
        "select tid, faid, status from trans, loc, acct \
         where city = 'san jose' and faid = aid",
    );
}

// ---------------------------------------------------------------------------
// Figure 6: Q4 (GROUP-BY boxes with exact child matches, re-grouping)
// ---------------------------------------------------------------------------

#[test]
fn fig06_q4_regroup_year_from_month() {
    let g = check_rewrite(
        "select year(date) as year, sum(qty * price) as value \
         from trans group by year(date)",
        "select year(date) as year, month(date) as month, sum(qty * price) as value \
         from trans group by year(date), month(date)",
    );
    // Re-grouping compensation must aggregate again.
    assert!(g.boxes.iter().any(|b| b.is_group_by()));
}

#[test]
fn fig06_exact_grouping_sets_need_no_regroup() {
    // Identical grouping sets: the match is exact, the rewrite is a plain
    // scan of the AST.
    let g = check_rewrite(
        "select year(date) as year, sum(qty * price) as value \
         from trans group by year(date)",
        "select year(date) as year, sum(qty * price) as value \
         from trans group by year(date)",
    );
    assert!(
        !g.boxes.iter().any(|b| b.is_group_by()),
        "no GROUP BY needed:\n{}",
        render_graph_sql(&g)
    );
}

// ---------------------------------------------------------------------------
// Figure 7: Q6 / AST6 (GROUP-BY with SELECT-only child compensation)
// ---------------------------------------------------------------------------

#[test]
fn fig07_q6_predicate_pullup_and_expression_grouping() {
    check_rewrite(
        "select year(date) % 100 as year, sum(qty * price) as value \
         from trans where month(date) >= 6 group by year(date) % 100",
        "select year(date) as year, month(date) as month, sum(qty * price) as value \
         from trans group by year(date), month(date)",
    );
}

#[test]
fn fig07_pullup_condition_rejects_non_derivable_predicate() {
    // The filter is on `day(date)`, which the AST does not group by:
    // the pullup condition fails and no rewrite may be produced.
    check_no_match(
        "select year(date) as year, count(*) as cnt \
         from trans where day(date) > 15 group by year(date)",
        "select year(date) as year, month(date) as month, count(*) as cnt \
         from trans group by year(date), month(date)",
    );
}

// ---------------------------------------------------------------------------
// Figure 8: Q7 / AST7 (GROUP-BY with rejoin child compensation, 1:N)
// ---------------------------------------------------------------------------

#[test]
fn fig08_q7_one_to_n_rejoin_avoids_regrouping() {
    let g = check_rewrite(
        "select lid, year(date) as year, count(*) as cnt \
         from trans, loc where flid = lid and country = 'USA' \
         group by lid, year(date)",
        "select flid, year(date) as year, count(*) as cnt \
         from trans group by flid, year(date)",
    );
    assert!(
        !g.boxes.iter().any(|b| b.is_group_by()),
        "1:N rejoin on the PK avoids re-grouping:\n{}",
        render_graph_sql(&g)
    );
}

#[test]
fn fig08_n_m_style_grouping_by_rejoin_attribute_regroups() {
    // Grouping by `state` (not Loc's key) merges several flids per group,
    // so the compensation must re-group and SUM the partial counts.
    let g = check_rewrite(
        "select state, year(date) as year, count(*) as cnt \
         from trans, loc where flid = lid group by state, year(date)",
        "select flid, year(date) as year, count(*) as cnt \
         from trans group by flid, year(date)",
    );
    assert!(g.boxes.iter().any(|b| b.is_group_by()));
}

// ---------------------------------------------------------------------------
// Figure 10: Q8 / AST8 (GROUP-BY boxes with GROUP-BY child compensation)
// ---------------------------------------------------------------------------

#[test]
fn fig10_q8_histogram_of_counts() {
    check_rewrite(
        "select tcnt, count(*) as ycnt from \
         (select year(date) as year, count(*) as tcnt from trans group by year(date)) as v \
         group by tcnt",
        "select year, tcnt, count(*) as mcnt from \
         (select year(date) as year, month(date) as month, count(*) as tcnt \
          from trans group by year(date), month(date)) as m \
         group by year, tcnt",
    );
}

// ---------------------------------------------------------------------------
// Figure 11: Q10 / AST10 (SELECT with GROUP-BY child compensation and a
// scalar subquery). The AST explicitly exports cnt and totcnt — the paper's
// QGM preserves these QNCs at the AST output; our ASTs export only declared
// columns, so the experiment declares them.
// ---------------------------------------------------------------------------

#[test]
fn fig11_q10_scalar_subquery_percentage() {
    check_rewrite(
        "select flid, count(*) / (select count(*) from trans) as cntpct \
         from trans, loc where flid = lid and country = 'USA' \
         group by flid having count(*) > 2",
        "select flid, year(date) as year, count(*) as cnt, \
                (select count(*) from trans) as totcnt \
         from trans group by flid, year(date)",
    );
}

// ---------------------------------------------------------------------------
// Table 1 (Section 6): syntactically equal HAVING predicates that are NOT
// semantically equivalent — translation exposes `count(*) > 2` as
// `sum(cnt) > 2`, which does not match the AST's own `count(*) > 2`.
// ---------------------------------------------------------------------------

#[test]
fn table1_having_predicates_are_compared_semantically() {
    check_no_match(
        "select flid, count(*) as cnt from trans group by flid having count(*) > 2",
        "select flid, year(date) as year, count(*) as cnt \
         from trans group by flid, year(date) having count(*) > 2",
    );
}

#[test]
fn table1_counterpart_same_level_having_does_match() {
    // When the grouping sets coincide, the same HAVING predicate IS
    // semantically equivalent and the match succeeds.
    check_rewrite(
        "select flid, count(*) as cnt from trans group by flid having count(*) > 2",
        "select flid, count(*) as cnt from trans group by flid having count(*) > 2",
    );
}

// ---------------------------------------------------------------------------
// Figure 13: simple GROUP-BY queries against a cube AST (Section 5.1)
// ---------------------------------------------------------------------------

const AST11: &str = "select flid, faid, year(date) as year, month(date) as month, count(*) as cnt \
     from trans group by grouping sets ((flid, year(date)), (flid, faid), \
     (flid, year(date), month(date)))";

#[test]
fn fig13_q11_1_exact_cuboid_with_slicing() {
    let g = check_rewrite(
        "select flid, year(date) as year, count(*) as cnt \
         from trans where year(date) > 1990 group by flid, year(date)",
        AST11,
    );
    assert!(
        !g.boxes.iter().any(|b| b.is_group_by()),
        "exact cuboid needs slicing only:\n{}",
        render_graph_sql(&g)
    );
}

#[test]
fn fig13_q11_2_regroup_from_finer_cuboid() {
    let g = check_rewrite(
        "select flid, year(date) as year, count(*) as cnt \
         from trans where month(date) >= 6 group by flid, year(date)",
        AST11,
    );
    assert!(g.boxes.iter().any(|b| b.is_group_by()));
}

#[test]
fn fig13_q11_3_count_distinct_has_no_match() {
    check_no_match(
        "select flid, year(date) as year, month(date) as month, \
                count(distinct faid) as custcnt \
         from trans group by flid, year(date), month(date)",
        AST11,
    );
}

// ---------------------------------------------------------------------------
// Figure 14: cube queries against a cube AST (Section 5.2)
// ---------------------------------------------------------------------------

const AST12: &str = "select flid, faid, year(date) as year, month(date) as month, count(*) as cnt \
     from trans group by grouping sets ((flid, faid, year(date)), (flid, year(date)), \
     (flid, year(date), month(date)), (year(date)))";

#[test]
fn fig14_q12_1_all_cuboids_present_no_regroup() {
    let g = check_rewrite(
        "select flid, year(date) as year, count(*) as cnt \
         from trans where year(date) > 1990 \
         group by grouping sets ((flid, year(date)), (year(date)))",
        AST12,
    );
    assert!(
        !g.boxes.iter().any(|b| b.is_group_by()),
        "disjunctive slicing, no re-grouping:\n{}",
        render_graph_sql(&g)
    );
}

#[test]
fn fig14_q12_2_missing_cuboid_forces_regroup() {
    let g = check_rewrite(
        "select flid, year(date) as year, count(*) as cnt \
         from trans where year(date) > 1990 \
         group by grouping sets ((flid), (year(date)))",
        AST12,
    );
    // The (flid) cuboid is absent from the AST: the compensation selects
    // the (flid, year) cuboid and re-groups by gs((flid),(year)).
    let regroup = g
        .boxes
        .iter()
        .filter_map(|b| b.as_group_by())
        .find(|gb| gb.sets.len() == 2)
        .expect("multidimensional regroup box");
    assert_eq!(regroup.sets.len(), 2);
}

// ---------------------------------------------------------------------------
// Additional cross-cutting checks from the running example (Figure 2).
// ---------------------------------------------------------------------------

#[test]
fn subsumption_footnote4_weaker_ast_predicate() {
    // AST keeps disc > 0.05; query wants disc > 0.1: the AST predicate
    // subsumes the query's, and the compensation re-applies the stronger one.
    check_rewrite(
        "select tid, qty from trans where disc > 0.1",
        "select tid, qty, disc from trans where disc > 0.05",
    );
    // The reverse direction must fail (the AST is missing rows).
    check_no_match(
        "select tid, qty from trans where disc > 0.05",
        "select tid, qty, disc from trans where disc > 0.1",
    );
}

#[test]
fn column_equivalence_from_join_predicates() {
    // Query selects `aid`; AST only exports `faid`, equivalent via the join.
    check_rewrite(
        "select aid, qty from trans, acct where faid = aid",
        "select faid, qty, status from trans, acct where faid = aid",
    );
}

#[test]
fn multi_ast_routing_picks_a_match() {
    let (cat, mut db) = setup();
    let coarse = RegisteredAst::from_sql(
        "coarse",
        "select faid, count(*) as cnt from trans group by faid",
        &cat,
    )
    .unwrap();
    let fine = RegisteredAst::from_sql(
        "fine",
        "select faid, flid, year(date) as year, count(*) as cnt \
         from trans group by faid, flid, year(date)",
        &cat,
    )
    .unwrap();
    materialize("coarse", &coarse.graph, &cat, &mut db).unwrap();
    materialize("fine", &fine.graph, &cat, &mut db).unwrap();
    let q = build_query(
        &parse_query("select faid, count(*) as cnt from trans group by faid").unwrap(),
        &cat,
    )
    .unwrap();
    let rewriter = Rewriter::new(&cat);
    let all = rewriter.rewrite_all(&q, &[coarse.clone(), fine.clone()]);
    assert_eq!(all.len(), 2, "both ASTs can answer the query");
    let best = rewriter
        .rewrite_best(&q, &[coarse, fine], |name| db.row_count(name))
        .unwrap();
    assert_eq!(best.ast_name, "coarse", "smaller AST wins");
    let rows = execute(&best.graph, &db).unwrap();
    let orig = execute(&q, &db).unwrap();
    assert_eq!(sorted(rows), sorted(orig));
}
