//! The "must refuse" catalogue: situations where producing a rewrite would
//! be unsound. Each case encodes one guard of the matching conditions; a
//! regression here is a soundness bug, not a coverage bug.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab_catalog::Catalog;
use sumtab_matcher::{RegisteredAst, Rewriter};
use sumtab_parser::parse_query;
use sumtab_qgm::build_query;

fn refuse(query: &str, ast: &str, why: &str) {
    let cat = Catalog::credit_card_sample();
    let a = RegisteredAst::from_sql("a", ast, &cat).unwrap();
    let q = build_query(&parse_query(query).unwrap(), &cat).unwrap();
    assert!(
        Rewriter::new(&cat).rewrite(&q, &a).unwrap().is_none(),
        "must refuse ({why}):\n  query: {query}\n  ast:   {ast}"
    );
}

fn accept(query: &str, ast: &str, why: &str) {
    let cat = Catalog::credit_card_sample();
    let a = RegisteredAst::from_sql("a", ast, &cat).unwrap();
    let q = build_query(&parse_query(query).unwrap(), &cat).unwrap();
    assert!(
        Rewriter::new(&cat).rewrite(&q, &a).unwrap().is_some(),
        "should accept ({why}):\n  query: {query}\n  ast:   {ast}"
    );
}

#[test]
fn ast_filters_rows_the_query_needs() {
    // Condition 2 of 4.1.1: every subsumer predicate must match a subsumee
    // predicate.
    refuse(
        "select tid, qty from trans",
        "select tid, qty from trans where qty > 3",
        "AST is missing qty <= 3 rows",
    );
    refuse(
        "select faid, count(*) as c from trans where year(date) > 1990 group by faid",
        "select faid, count(*) as c from trans where year(date) > 1991 group by faid",
        "AST predicate is strictly stronger",
    );
}

#[test]
fn subsumption_is_directional() {
    accept(
        "select tid from trans where qty > 5",
        "select tid, qty from trans where qty > 3",
        "weaker AST predicate + recheck",
    );
    refuse(
        "select tid from trans where qty > 3",
        "select tid, qty from trans where qty > 5",
        "stronger AST predicate lost rows",
    );
    // Subsumption needs the recheck column preserved.
    refuse(
        "select tid from trans where qty > 5",
        "select tid from trans where qty > 3",
        "qty needed for the residual predicate is not exported",
    );
}

#[test]
fn missing_columns_fail_derivation() {
    refuse(
        "select tid, price from trans",
        "select tid, qty from trans",
        "price not derivable",
    );
    refuse(
        "select faid, sum(price) as s from trans group by faid",
        "select faid, sum(qty) as s, count(*) as c from trans group by faid",
        "no SUM(price) partial aggregate",
    );
}

#[test]
fn grouping_set_must_cover_query_grouping() {
    refuse(
        "select faid, flid, count(*) as c from trans group by faid, flid",
        "select faid, count(*) as c from trans group by faid",
        "AST is coarser than the query",
    );
    refuse(
        "select month(date) as m, count(*) as c from trans group by month(date)",
        "select year(date) as y, count(*) as c from trans group by year(date)",
        "month not derivable from year",
    );
}

#[test]
fn aggregate_rederivability_limits() {
    // MIN over partials is fine; COUNT over MIN partials is not.
    accept(
        "select faid, min(price) as m from trans group by faid",
        "select faid, flid, min(price) as m from trans group by faid, flid",
        "MIN of MIN",
    );
    refuse(
        "select faid, count(*) as c from trans group by faid",
        "select faid, flid, min(price) as m from trans group by faid, flid",
        "no COUNT partial",
    );
    refuse(
        "select faid, count(distinct flid) as c from trans group by faid",
        "select faid, count(*) as c from trans group by faid",
        "COUNT DISTINCT needs the column as a grouping column",
    );
    accept(
        "select faid, count(distinct flid) as c from trans group by faid",
        "select faid, flid, count(*) as c from trans group by faid, flid",
        "rule (f): COUNT(DISTINCT flid) via the grouping column",
    );
    accept(
        "select faid, sum(distinct qty) as s from trans group by faid",
        "select faid, qty, count(*) as c from trans group by faid, qty",
        "rule (g): SUM(DISTINCT qty) via the grouping column",
    );
    refuse(
        "select faid, sum(distinct qty) as s from trans group by faid",
        "select faid, sum(qty) as s from trans group by faid",
        "SUM(DISTINCT) cannot come from a plain SUM partial",
    );
}

#[test]
fn count_bridges_require_non_nullability() {
    // Rule (a)'s COUNT(z) bridge: the query's COUNT(*) may be re-summed
    // from the AST's COUNT(qty) because qty is non-nullable.
    accept(
        "select faid, count(*) as c from trans group by faid",
        "select faid, flid, count(qty) as c from trans group by faid, flid",
        "COUNT(*) from COUNT(non-nullable z)",
    );
    // With a nullable column the bridge is unsound in both directions.
    let mut cat = Catalog::credit_card_sample();
    cat.add_table(sumtab_catalog::Table::new(
        "n",
        vec![
            sumtab_catalog::Column::new("g", sumtab_catalog::SqlType::Int),
            sumtab_catalog::Column::nullable("x", sumtab_catalog::SqlType::Int),
        ],
    ))
    .unwrap();
    for (qs, as_) in [
        (
            "select g, count(*) as c from n group by g",
            "select g, count(x) as c from n group by g",
        ),
        (
            "select g, count(x) as c from n group by g",
            "select g, count(*) as c from n group by g",
        ),
    ] {
        let a = RegisteredAst::from_sql("a", as_, &cat).unwrap();
        let q = build_query(&parse_query(qs).unwrap(), &cat).unwrap();
        assert!(
            Rewriter::new(&cat).rewrite(&q, &a).unwrap().is_none(),
            "nullable COUNT bridge must refuse: {qs} vs {as_}"
        );
    }
}

#[test]
fn different_base_tables_never_match() {
    refuse(
        "select lid from loc",
        "select pgid as lid from pgroup",
        "different leaves",
    );
}

#[test]
fn having_must_be_accounted_for() {
    // AST with HAVING at a finer grouping cannot answer a coarser query
    // even when predicates look alike (Table 1), nor a predicate-free one.
    refuse(
        "select flid, count(*) as cnt from trans group by flid",
        "select flid, count(*) as cnt from trans group by flid having count(*) > 2",
        "AST drops small groups",
    );
}

#[test]
fn cube_slicing_needs_matching_cuboids() {
    refuse(
        "select faid, month(date) as m, count(*) as c \
         from trans group by faid, month(date)",
        "select flid, year(date) as y, count(*) as c \
         from trans group by grouping sets ((flid, year(date)), (flid))",
        "requested grouping absent from every cuboid",
    );
    refuse(
        "select flid, count(*) as c from trans where month(date) > 6 group by flid",
        "select flid, year(date) as y, count(*) as c \
         from trans group by grouping sets ((flid, year(date)), (flid))",
        "pullup predicate needs month, no cuboid has it",
    );
}

#[test]
fn self_join_queries_are_handled_conservatively() {
    // A self-join query vs a single-occurrence AST: only one Trans child
    // can match; the other must be a rejoin of the whole fact table, which
    // is pointless but must at least be *sound*. We accept either refusal
    // or a sound rewrite.
    let cat = Catalog::credit_card_sample();
    let a = RegisteredAst::from_sql("a", "select tid, faid, qty from trans", &cat).unwrap();
    let q = build_query(
        &parse_query(
            "select t1.tid, t2.tid from trans as t1, trans as t2 \
             where t1.faid = t2.faid and t1.tid <> t2.tid",
        )
        .unwrap(),
        &cat,
    )
    .unwrap();
    // Soundness of any produced rewrite is covered by the property tests;
    // here we only require no panic.
    let _ = Rewriter::new(&cat).rewrite(&q, &a);
}

#[test]
fn mismatched_scalar_subquery_is_recomputed_not_borrowed() {
    // The query's subquery (over Loc) differs from the AST's (over Trans):
    // the match may still succeed, but only by cloning the Loc subquery
    // into the compensation — it must NOT borrow the AST's totcnt.
    let cat = Catalog::credit_card_sample();
    let a = RegisteredAst::from_sql(
        "a",
        "select flid, count(*) as cnt, (select count(*) from trans) as totcnt \
         from trans group by flid",
        &cat,
    )
    .unwrap();
    let q = build_query(
        &parse_query(
            "select flid, count(*) / (select count(*) from loc) as pct \
             from trans group by flid",
        )
        .unwrap(),
        &cat,
    )
    .unwrap();
    let rw = Rewriter::new(&cat)
        .rewrite(&q, &a)
        .unwrap()
        .expect("sound rewrite with a recomputed subquery");
    let sql = sumtab_qgm::render_graph_sql(&rw.graph);
    assert!(
        sql.contains("loc"),
        "the Loc subquery is re-evaluated: {sql}"
    );
    assert!(
        !sql.contains("totcnt"),
        "the AST's Trans-based total must not be used: {sql}"
    );
}

#[test]
fn extra_join_losslessness_edge_cases() {
    // Extra join on a non-FK column pair: refuse.
    refuse(
        "select tid from trans",
        "select tid from trans, loc where qty = lid",
        "qty=lid is not an RI join",
    );
    // Extra join with an additional filter on the extra table: the filter
    // eliminates subsumer rows the query needs.
    refuse(
        "select tid from trans",
        "select tid from trans, loc where flid = lid and country = 'USA'",
        "filtered extra join is lossy",
    );
    // Proper RI extra join: accept (Figure 5's Loc).
    accept(
        "select tid, qty from trans",
        "select tid, qty, country from trans, loc where flid = lid",
        "RI-backed extra join is lossless",
    );
    // Snowflake chain: Trans -> Acct -> Cust, both RI-backed.
    accept(
        "select tid, qty from trans",
        "select tid, qty, cname from trans, acct, cust \
         where faid = aid and fcid = cid",
        "chained lossless extra joins",
    );
}
