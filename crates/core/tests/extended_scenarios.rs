//! Extended matching scenarios beyond the paper's figures: combinations of
//! the patterns (expression-heavy derivations, CASE/LIKE/IN predicates,
//! snowflake rejoins, AVG rewriting, multidimensional + rejoin mixes).
//! Each positive case executes both forms and compares results.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab_catalog::{Catalog, Date, Value};
use sumtab_engine::{execute, materialize, Database};
use sumtab_matcher::{RegisteredAst, Rewriter};
use sumtab_parser::parse_query;
use sumtab_qgm::build_query;

fn setup() -> (Catalog, Database) {
    let cat = Catalog::credit_card_sample();
    let mut db = Database::new();
    db.insert(
        &cat,
        "loc",
        vec![
            vec![1.into(), "san jose".into(), "CA".into(), "USA".into()],
            vec![2.into(), "dallas".into(), "TX".into(), "USA".into()],
            vec![3.into(), "lyon".into(), "ARA".into(), "France".into()],
        ],
    )
    .unwrap();
    db.insert(
        &cat,
        "pgroup",
        vec![
            vec![10.into(), "TV".into()],
            vec![11.into(), "Tuner".into()],
            vec![12.into(), "Radio".into()],
        ],
    )
    .unwrap();
    db.insert(
        &cat,
        "cust",
        vec![
            vec![1000.into(), "alice".into(), 30.into()],
            vec![2000.into(), "bob".into(), 55.into()],
        ],
    )
    .unwrap();
    db.insert(
        &cat,
        "acct",
        vec![
            vec![100.into(), 1000.into(), "gold".into()],
            vec![200.into(), 1000.into(), "basic".into()],
            vec![300.into(), 2000.into(), "gold".into()],
        ],
    )
    .unwrap();
    let mut rows = Vec::new();
    let mut x: u64 = 42;
    let mut rnd = |m: u64| {
        x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (x >> 33) % m
    };
    for tid in 0..600i64 {
        rows.push(vec![
            Value::Int(tid),
            Value::Int([100i64, 200, 300][rnd(3) as usize]),
            Value::Int(1 + rnd(3) as i64),
            Value::Int(10 + rnd(3) as i64),
            Value::Date(
                Date::new(1990 + rnd(4) as i32, 1 + rnd(12) as u8, 1 + rnd(28) as u8).unwrap(),
            ),
            Value::Int(1 + rnd(6) as i64),
            Value::Double(5.0 + rnd(300) as f64),
            Value::Double(rnd(4) as f64 / 10.0),
        ]);
    }
    db.insert(&cat, "trans", rows).unwrap();
    (cat, db)
}

fn check(query_sql: &str, ast_sql: &str) {
    let (cat, mut db) = setup();
    let ast = RegisteredAst::from_sql("xast", ast_sql, &cat).unwrap();
    materialize("xast", &ast.graph, &cat, &mut db).unwrap();
    let q = build_query(&parse_query(query_sql).unwrap(), &cat).unwrap();
    let rw = Rewriter::new(&cat)
        .rewrite(&q, &ast)
        .unwrap()
        .unwrap_or_else(|| panic!("expected match:\n  {query_sql}\n  {ast_sql}"));
    let mut a = execute(&q, &db).unwrap();
    let mut b = execute(&rw.graph, &db).unwrap();
    a.sort();
    b.sort();
    assert!(!a.is_empty(), "vacuous: {query_sql}");
    let close = a.len() == b.len()
        && a.iter().zip(&b).all(|(ra, rb)| {
            ra.iter().zip(rb).all(|(x, y)| match (x, y) {
                (Value::Double(p), Value::Double(q)) => {
                    (p - q).abs() <= p.abs().max(q.abs()).max(1.0) * 1e-9
                }
                _ => x == y,
            })
        });
    assert!(
        close,
        "results differ for {query_sql}\nrewritten: {}",
        sumtab_qgm::render_graph_sql(&rw.graph)
    );
}

#[test]
fn avg_is_rewritten_via_sum_and_count() {
    check(
        "select faid, avg(qty) as aq from trans group by faid",
        "select faid, flid, sum(qty) as sq, count(qty) as cq, count(*) as c \
         from trans group by faid, flid",
    );
}

#[test]
fn avg_of_expression() {
    check(
        "select flid, avg(qty * price) as av from trans group by flid",
        "select flid, year(date) as y, sum(qty * price) as s, \
                count(qty * price) as c from trans group by flid, year(date)",
    );
}

#[test]
fn case_expression_in_query_derives_from_ast_columns() {
    check(
        "select tid, case when disc > 0.2 then 'deal' else 'full' end as label \
         from trans where price > 100",
        "select tid, price, disc from trans",
    );
}

#[test]
fn case_expression_precomputed_in_ast() {
    check(
        "select tid, case when disc > 0.2 then 'deal' else 'full' end as label \
         from trans",
        "select tid, case when disc > 0.2 then 'deal' else 'full' end as label, \
                price from trans",
    );
}

#[test]
fn like_and_in_predicates_compensate() {
    check(
        "select tid, pgname from trans, pgroup \
         where fpgid = pgid and pgname like 'T%' and qty in (1, 2, 3)",
        "select tid, fpgid, qty from trans",
    );
}

#[test]
fn between_normalization_matches_explicit_range() {
    // Query uses BETWEEN; AST uses the equivalent explicit conjunction.
    check(
        "select tid from trans where qty between 2 and 4",
        "select tid, qty from trans where qty >= 2 and qty <= 4",
    );
}

#[test]
fn snowflake_rejoin_through_two_dimensions() {
    // Query reaches Cust through Acct; AST has neither dimension.
    check(
        "select cname, count(*) as cnt \
         from trans, acct, cust where faid = aid and fcid = cid group by cname",
        "select faid, year(date) as y, count(*) as cnt from trans \
         group by faid, year(date)",
    );
}

#[test]
fn multidimensional_ast_with_rejoin_compensation() {
    // Cube AST + query needing a rejoin to Loc: slicing + rejoin combine.
    check(
        "select state, count(*) as cnt from trans, loc where flid = lid group by state",
        "select flid, year(date) as y, count(*) as cnt from trans \
         group by grouping sets ((flid, year(date)), (flid), (year(date)))",
    );
}

#[test]
fn grouping_expression_arithmetic_family() {
    // year(date) - 1900 derivable from year(date).
    check(
        "select year(date) - 1900 as y2, count(*) as c from trans \
         group by year(date) - 1900",
        "select year(date) as y, month(date) as m, count(*) as c \
         from trans group by year(date), month(date)",
    );
}

#[test]
fn sum_of_grouping_column_times_count_rule_c() {
    // SUM(qty) from an AST grouping by qty: rule (c)'s second form.
    check(
        "select flid, sum(qty) as s from trans group by flid",
        "select flid, qty, count(*) as c from trans group by flid, qty",
    );
}

#[test]
fn max_of_grouping_column_rule_d() {
    check(
        "select flid, max(qty) as m, min(qty) as n from trans group by flid",
        "select flid, qty, count(*) as c from trans group by flid, qty",
    );
}

#[test]
fn top_select_arithmetic_over_aggregates() {
    check(
        "select faid, sum(qty * price) / count(*) as avg_amt, count(*) + 0 as c \
         from trans group by faid having sum(qty * price) > 100",
        "select faid, flid, sum(qty * price) as v, count(*) as c \
         from trans group by faid, flid",
    );
}

#[test]
fn projection_only_exact_match_with_reorder() {
    check(
        "select qty, tid from trans",
        "select tid, price, qty from trans",
    );
}

#[test]
fn double_stacked_regrouping() {
    // Query groups by year; AST by (year, month, flid): one regroup over a
    // cube-free, three-column AST.
    check(
        "select year(date) as y, count(*) as c, sum(qty) as s from trans \
         group by year(date) having count(*) > 5",
        "select year(date) as y, month(date) as m, flid, count(*) as c, \
                sum(qty) as s from trans group by year(date), month(date), flid",
    );
}

#[test]
fn where_clause_on_grouping_column_of_ast() {
    check(
        "select flid, count(*) as c from trans where flid = 2 group by flid",
        "select flid, year(date) as y, count(*) as c from trans \
         group by flid, year(date)",
    );
}

#[test]
fn is_null_predicate_round_trip() {
    // All sample columns are non-nullable; IS NOT NULL is vacuously true
    // but must still translate and compensate correctly.
    check(
        "select tid from trans where disc is not null and qty > 3",
        "select tid, qty, disc from trans",
    );
}

#[test]
fn order_by_and_limit_preserved_through_rewrite() {
    let (cat, mut db) = setup();
    let ast = RegisteredAst::from_sql(
        "xast",
        "select faid, flid, count(*) as cnt from trans group by faid, flid",
        &cat,
    )
    .unwrap();
    materialize("xast", &ast.graph, &cat, &mut db).unwrap();
    let q = build_query(
        &parse_query(
            "select faid, count(*) as cnt from trans group by faid \
             order by cnt desc, faid limit 2",
        )
        .unwrap(),
        &cat,
    )
    .unwrap();
    let rw = Rewriter::new(&cat).rewrite(&q, &ast).unwrap().unwrap();
    let a = execute(&q, &db).unwrap();
    let b = execute(&rw.graph, &db).unwrap();
    assert_eq!(a.len(), 2);
    assert_eq!(
        a, b,
        "ordered results must match exactly (not just as sets)"
    );
}

#[test]
fn rewrite_graphs_are_structurally_valid() {
    // Every produced graph must pass the QGM structural validator (also
    // exercised implicitly by Rewriter, but assert here explicitly).
    let (cat, _db) = setup();
    let ast = RegisteredAst::from_sql(
        "xast",
        "select faid, flid, year(date) as y, count(*) as cnt, sum(qty) as s \
         from trans group by faid, flid, year(date)",
        &cat,
    )
    .unwrap();
    for sql in [
        "select faid, count(*) as c from trans group by faid",
        "select flid, sum(qty) as s from trans group by flid having sum(qty) > 10",
        "select faid, state, count(*) as c from trans, loc where flid = lid group by faid, state",
    ] {
        let q = build_query(&parse_query(sql).unwrap(), &cat).unwrap();
        let rw = Rewriter::new(&cat).rewrite(&q, &ast).unwrap().unwrap();
        rw.graph.validate();
    }
}

#[test]
fn self_join_pairing_backtracks_footnote3() {
    // The greedy first assignment pairs the query's qty-side Trans with the
    // AST's price-side Trans (listed first) and fails condition 2; the
    // bounded backtracking of footnote 3 finds the crossed pairing.
    check(
        "select a.tid as t1, b.tid as t2 \
         from trans as a, trans as b \
         where a.qty > 3 and b.price > 100 and a.faid = b.faid",
        "select y.tid as tid1, x.tid as tid2, x.price, y.qty, x.faid as fx, y.faid as fy \
         from trans as x, trans as y \
         where x.price > 100 and y.qty > 3 and x.faid = y.faid",
    );
}

#[test]
fn self_join_histogram_ast() {
    // Both sides self-join the fact table symmetrically.
    check(
        "select a.flid, count(*) as c from trans as a, trans as b \
         where a.faid = b.faid group by a.flid",
        "select a.flid, b.flid as flid2, count(*) as c from trans as a, trans as b \
         where a.faid = b.faid group by a.flid, b.flid",
    );
}
