//! Expression derivation (Section 6, second half).
//!
//! Given a translated (mixed-space) subsumee expression, derivation rewrites
//! it over the *available* columns — the subsumer's output QCLs and the
//! rejoin columns — collapsing every subtree the subsumer already computes.
//! The whole-node match is tried before recursing, which realizes the
//! paper's "minimum number of subsumer QCLs" tie-break (Figure 5: `amt` is
//! derived from `value` and `disc` rather than `qty`, `price`, and `disc`).

use crate::equiv::{equiv_eq, ColEquiv};
use crate::translate::Avail;
use sumtab_qgm::{ColRef, ScalarExpr};

/// Derive `expr` (mixed space, normalized) over the available columns.
/// Returns the compensation-space expression, or `None` when underivable.
pub fn derive(expr: &ScalarExpr, avail: &[Avail], eq: &ColEquiv) -> Option<ScalarExpr> {
    // Whole-node match first: fewest referenced columns.
    for a in avail {
        if equiv_eq(expr, &a.defines, eq) {
            return Some(ScalarExpr::Col(a.refer));
        }
    }
    Some(match expr {
        // A bare column with no whole-node hit: try its equivalence-class
        // members (covered by equiv_eq above through `same`) — reaching
        // here means the column is simply unavailable.
        ScalarExpr::Col(_) => return None,
        ScalarExpr::Lit(v) => ScalarExpr::Lit(v.clone()),
        ScalarExpr::BaseCol(_) => return None,
        ScalarExpr::Bin(op, l, r) => {
            ScalarExpr::bin(*op, derive(l, avail, eq)?, derive(r, avail, eq)?)
        }
        ScalarExpr::Un(op, x) => ScalarExpr::Un(*op, Box::new(derive(x, avail, eq)?)),
        ScalarExpr::Func(f, args) => {
            let mut out = Vec::with_capacity(args.len());
            for a in args {
                out.push(derive(a, avail, eq)?);
            }
            ScalarExpr::Func(*f, out)
        }
        ScalarExpr::Case {
            operand,
            arms,
            else_expr,
        } => {
            let operand = match operand {
                Some(o) => Some(Box::new(derive(o, avail, eq)?)),
                None => None,
            };
            let mut out_arms = Vec::with_capacity(arms.len());
            for (w, t) in arms {
                out_arms.push((derive(w, avail, eq)?, derive(t, avail, eq)?));
            }
            let else_expr = match else_expr {
                Some(e) => Some(Box::new(derive(e, avail, eq)?)),
                None => None,
            };
            ScalarExpr::Case {
                operand,
                arms: out_arms,
                else_expr,
            }
        }
        ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
            expr: Box::new(derive(expr, avail, eq)?),
            negated: *negated,
        },
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => ScalarExpr::Like {
            expr: Box::new(derive(expr, avail, eq)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        // Aggregates are only derivable by a whole-node hit (exact agg QCL
        // match); regrouping derivations are bespoke to the GROUP BY
        // patterns (Section 4.1.2 rules a–g).
        ScalarExpr::Agg(_) | ScalarExpr::GeneralAgg { .. } => return None,
    })
}

/// Count the number of distinct available columns an expression references —
/// diagnostics for the minimal-derivation tie-break.
pub fn referenced_cols(expr: &ScalarExpr) -> Vec<ColRef> {
    let mut refs = expr.col_refs();
    refs.sort();
    refs.dedup();
    refs
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use sumtab_catalog::Value;
    use sumtab_qgm::{BinOp, GraphId, QuantId};

    fn cr(q: u32, o: usize) -> ColRef {
        ColRef {
            qid: QuantId {
                graph: GraphId(77),
                idx: q,
            },
            ordinal: o,
        }
    }

    fn col(q: u32, o: usize) -> ScalarExpr {
        ScalarExpr::Col(cr(q, o))
    }

    fn out(o: usize) -> ColRef {
        cr(99, o)
    }

    /// Availability: value = qty*price (out 0), qty (out 1), price (out 2),
    /// disc (out 3).
    fn avail() -> Vec<Avail> {
        let qty = col(0, 5);
        let price = col(0, 6);
        let disc = col(0, 7);
        vec![
            Avail {
                refer: out(0),
                defines: ScalarExpr::bin(BinOp::Mul, qty.clone(), price.clone()).normalize(),
            },
            Avail {
                refer: out(1),
                defines: qty.normalize(),
            },
            Avail {
                refer: out(2),
                defines: price.normalize(),
            },
            Avail {
                refer: out(3),
                defines: disc.normalize(),
            },
        ]
    }

    #[test]
    fn whole_node_beats_leaf_decomposition() {
        // qty*price*(1-disc): the qty*price subtree should collapse to the
        // `value` column (minimal-QCL derivation of Figure 5).
        let eq = ColEquiv::new();
        let amt = ScalarExpr::bin(
            BinOp::Mul,
            ScalarExpr::bin(BinOp::Mul, col(0, 5), col(0, 6)),
            ScalarExpr::bin(BinOp::Sub, ScalarExpr::Lit(Value::Int(1)), col(0, 7)),
        )
        .normalize();
        let derived = derive(&amt, &avail(), &eq).unwrap();
        let used = referenced_cols(&derived);
        assert_eq!(used.len(), 2, "value and disc only: {derived:?}");
        assert!(used.contains(&out(0)));
        assert!(used.contains(&out(3)));
    }

    #[test]
    fn fallback_to_leaves_when_no_subtree_matches() {
        let eq = ColEquiv::new();
        // qty + price has no whole-node hit; derive leaf-wise.
        let e = ScalarExpr::bin(BinOp::Add, col(0, 5), col(0, 6)).normalize();
        let derived = derive(&e, &avail(), &eq).unwrap();
        assert_eq!(referenced_cols(&derived).len(), 2);
    }

    #[test]
    fn underivable_column_fails() {
        let eq = ColEquiv::new();
        let e = col(0, 1).normalize(); // not in avail
        assert!(derive(&e, &avail(), &eq).is_none());
    }

    #[test]
    fn equivalence_class_rescues_missing_column() {
        let mut eq = ColEquiv::new();
        // col(0,1) ≡ qty (col(0,5)) — like aid ≡ faid.
        eq.union(cr(0, 1), cr(0, 5));
        let e = col(0, 1).normalize();
        let derived = derive(&e, &avail(), &eq).unwrap();
        assert_eq!(derived, ScalarExpr::Col(out(1)));
    }

    #[test]
    fn literals_pass_through() {
        let eq = ColEquiv::new();
        let e = ScalarExpr::bin(BinOp::Gt, col(0, 5), ScalarExpr::Lit(Value::Int(100))).normalize();
        let derived = derive(&e, &avail(), &eq).unwrap();
        assert!(matches!(derived, ScalarExpr::Bin(..)));
    }
}
