//! The matching context and match table.
//!
//! The *navigator* (Section 3) scans the query graph and the AST graph
//! bottom-up, invoking the match function on candidate (subsumee, subsumer)
//! box pairs. Successful matches are recorded in the match table together
//! with their *compensation*: a QGM fragment, allocated in a scratch graph,
//! whose single special leaf ([`BoxKind::SubsumerRef`]) stands for "the
//! output of the subsumer box". When the AST's root box is finally matched,
//! the winning fragment is spliced into the query over the AST's
//! materialized backing table.

use std::collections::HashMap;
use sumtab_catalog::Catalog;
use sumtab_qgm::{BoxId, BoxKind, ColMeta, OutputCol, QgmGraph, ScalarExpr};

/// Which graph a subsumee box lives in: the user query, or the scratch
/// compensation graph (the latter only during the recursive invocation of
/// the match function, Section 4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The user-query graph.
    Query,
    /// The scratch compensation graph.
    Comp,
}

/// A successful match between a subsumee and a subsumer box.
#[derive(Debug, Clone)]
pub struct MatchEntry {
    /// True when the match is exact (no compensation required). Per
    /// footnote 5, the subsumer may produce extra columns and the match is
    /// still considered exact; `colmap` records the projection.
    pub exact: bool,
    /// For exact matches: subsumee output ordinal → subsumer output ordinal.
    pub colmap: Vec<usize>,
    /// For non-exact matches: the root box of the compensation fragment in
    /// the scratch graph. The fragment's outputs correspond 1:1 (by ordinal
    /// and meaning) to the subsumee's outputs.
    pub comp_root: Option<BoxId>,
}

impl MatchEntry {
    /// An exact match with the given projection map.
    pub fn exact(colmap: Vec<usize>) -> MatchEntry {
        MatchEntry {
            exact: true,
            colmap,
            comp_root: None,
        }
    }

    /// A match with compensation.
    pub fn with_comp(root: BoxId) -> MatchEntry {
        MatchEntry {
            exact: false,
            colmap: Vec::new(),
            comp_root: Some(root),
        }
    }
}

/// Shared state for matching one query against one AST.
pub struct Ctx<'a> {
    /// The user query graph (read-only).
    pub q: &'a QgmGraph,
    /// The AST definition graph (read-only).
    pub a: &'a QgmGraph,
    /// Scratch graph holding compensation fragments and rejoin clones.
    pub comp: QgmGraph,
    /// Catalog (RI constraints, nullability).
    pub catalog: &'a Catalog,
    /// The match table, keyed by (subsumee box, subsumer box). Only
    /// query-graph subsumees are recorded; recursive (comp-graph) matches
    /// are consumed immediately by their caller.
    pub table: HashMap<(BoxId, BoxId), MatchEntry>,
    /// Output metadata for the query graph.
    pub q_meta: HashMap<BoxId, Vec<ColMeta>>,
    /// Output metadata for the AST graph.
    pub a_meta: HashMap<BoxId, Vec<ColMeta>>,
    /// Per-AST-box output equivalence classes (see `equiv::output_classes`):
    /// two outputs with equal class ids always carry equal values.
    pub a_classes: HashMap<BoxId, Vec<usize>>,
}

impl<'a> Ctx<'a> {
    /// Create a context and precompute metadata.
    pub fn new(q: &'a QgmGraph, a: &'a QgmGraph, catalog: &'a Catalog) -> Ctx<'a> {
        let q_meta = sumtab_qgm::infer_output_types(q, catalog);
        let a_meta = sumtab_qgm::infer_output_types(a, catalog);
        let a_classes = crate::equiv::output_classes(a, catalog);
        Ctx {
            q,
            a,
            comp: QgmGraph::new(),
            catalog,
            table: HashMap::new(),
            q_meta,
            a_meta,
            a_classes,
        }
    }

    /// The graph a subsumee side refers to.
    pub fn egraph(&self, side: Side) -> &QgmGraph {
        match side {
            Side::Query => self.q,
            Side::Comp => &self.comp,
        }
    }

    /// Create a `SubsumerRef` leaf box in the scratch graph standing for
    /// subsumer box `target`; its outputs mirror the target's output names.
    pub fn make_subsumer_ref(&mut self, target: BoxId) -> BoxId {
        let b = self.comp.add_box(BoxKind::SubsumerRef {
            graph: self.a.id,
            target,
        });
        self.comp.boxed_mut(b).outputs = self
            .a
            .boxed(target)
            .outputs
            .iter()
            .enumerate()
            .map(|(i, oc)| OutputCol {
                name: oc.name.clone(),
                expr: ScalarExpr::BaseCol(i),
            })
            .collect();
        b
    }

    /// True when the comp-graph subgraph rooted at `b` contains a
    /// `SubsumerRef` leaf (i.e. is a compensation path rather than a rejoin
    /// clone).
    pub fn reaches_subsumer(&self, b: BoxId) -> bool {
        match &self.comp.boxed(b).kind {
            BoxKind::SubsumerRef { .. } => true,
            _ => self
                .comp
                .boxed(b)
                .quants
                .iter()
                .any(|&q| self.reaches_subsumer(self.comp.input_of(q))),
        }
    }
}

/// The navigator: match every query box against every AST box, bottom-up.
/// Returns the filled context.
pub fn run_navigator<'a>(q: &'a QgmGraph, a: &'a QgmGraph, catalog: &'a Catalog) -> Ctx<'a> {
    crate::stats::count_navigator_run();
    let mut ctx = Ctx::new(q, a, catalog);
    let q_order = q.topo_order();
    let a_order = a.topo_order();
    for &eb in &q_order {
        for &rb in &a_order {
            if let Some(entry) = crate::patterns::match_boxes(&mut ctx, Side::Query, eb, rb) {
                ctx.table.insert((eb, rb), entry);
            }
        }
    }
    ctx
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use sumtab_catalog::Catalog;
    use sumtab_parser::parse_query;
    use sumtab_qgm::build_query;

    #[test]
    fn subsumer_ref_mirrors_outputs() {
        let cat = Catalog::credit_card_sample();
        let q = build_query(&parse_query("select qty from trans").unwrap(), &cat).unwrap();
        let a = build_query(&parse_query("select qty, price from trans").unwrap(), &cat).unwrap();
        let mut ctx = Ctx::new(&q, &a, &cat);
        let sr = ctx.make_subsumer_ref(a.root);
        assert_eq!(ctx.comp.boxed(sr).outputs.len(), 2);
        assert_eq!(ctx.comp.boxed(sr).outputs[1].name, "price");
        assert!(ctx.reaches_subsumer(sr));
    }
}
