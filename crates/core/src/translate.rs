//! Expression translation into the subsumer's context (Section 6).
//!
//! A subsumee expression references subsumee QNCs, which are meaningless in
//! the subsumer's graph. Translation rewrites the expression into the *mixed
//! space* of a candidate match: subsumer QNCs (quantifiers of the subsumer
//! box `r`) plus rejoin columns (quantifiers of the compensation box under
//! construction). The paper's five-step walk (Figure 15) — replace each QNC
//! by the producing QCL expression, push down through the child
//! compensation, stop at rejoin columns, land on subsumer QNCs — is
//! implemented by [`translate`] + [`push_out`].

use crate::context::{Ctx, Side};
use std::collections::HashMap;
use sumtab_qgm::{BoxId, BoxKind, ColRef, QuantId, ScalarExpr};

/// Where a subsumee child's columns land after translation.
#[derive(Debug, Clone)]
pub enum Target {
    /// Exact child match: subsumee QNC `(qe, i)` becomes subsumer QNC
    /// `(qr, colmap[i])`.
    Exact {
        /// The subsumer's quantifier over the matching child.
        qr: QuantId,
        /// Subsumee ordinal → subsumer child output ordinal.
        colmap: Vec<usize>,
    },
    /// Child matched with compensation: subsumee QNC `(qe, i)` is the `i`-th
    /// output of the compensation fragment, pushed down to mixed space.
    Fragment {
        /// The fragment's root box in the scratch graph.
        root: BoxId,
    },
    /// A rejoin child: columns stay as references to the compensation box's
    /// own quantifier over the rejoin clone.
    Rejoin {
        /// The compensation box's quantifier over the clone.
        qnew: QuantId,
    },
}

/// Per-match translation state.
pub struct Translation {
    /// Subsumee quantifier → where its columns land.
    pub targets: HashMap<QuantId, Target>,
    /// Subsumer child box → the subsumer's quantifier over it. Used to
    /// rebase fragment `SubsumerRef` leaves into the subsumer's QNC space.
    pub sub_map: HashMap<BoxId, QuantId>,
    /// The compensation box that adopts stray fragment quantifiers
    /// (rejoins/scalars living inside child fragments).
    pub cbox: BoxId,
    /// Fragment-internal quantifier → adopted compensation-box quantifier.
    pub adopt: HashMap<QuantId, QuantId>,
    /// The subsumer box of the *current* match. A `SubsumerRef` targeting it
    /// (rather than one of its children) resolves outputs by inlining the
    /// subsumer's own output expressions — this happens after a fragment has
    /// been rebased onto the subsumer (Section 4.2.4's pullup).
    pub top_subsumer: Option<BoxId>,
    /// When false, fragment-internal rejoin columns are kept as-is during
    /// push-down instead of being adopted onto `cbox`. Used on the
    /// grouping-fragment path, where the fragment's boxes (including its
    /// rejoins) are reused wholesale rather than re-derived.
    pub adopt_enabled: bool,
}

impl Translation {
    /// Fresh translation state for compensation box `cbox`.
    pub fn new(cbox: BoxId) -> Translation {
        Translation {
            targets: HashMap::new(),
            sub_map: HashMap::new(),
            cbox,
            adopt: HashMap::new(),
            top_subsumer: None,
            adopt_enabled: true,
        }
    }
}

/// Translate a subsumee expression (from `side`'s graph) into mixed space.
/// Returns `None` when some column has no target (e.g. an unmatched,
/// non-rejoin child) or a fragment push-down fails.
pub fn translate(ctx: &mut Ctx<'_>, tr: &mut Translation, expr: &ScalarExpr) -> Option<ScalarExpr> {
    Some(match expr {
        ScalarExpr::Col(c) => translate_col(ctx, tr, *c)?,
        ScalarExpr::Agg(a) => {
            // GROUP BY subsumee output: translate the simple argument, which
            // may expand to a general expression.
            let arg = match a.arg {
                None => None,
                Some(c) => Some(Box::new(translate_col(ctx, tr, c)?)),
            };
            ScalarExpr::GeneralAgg {
                func: a.func,
                arg,
                distinct: a.distinct,
            }
        }
        ScalarExpr::Lit(v) => ScalarExpr::Lit(v.clone()),
        ScalarExpr::BaseCol(i) => ScalarExpr::BaseCol(*i),
        ScalarExpr::Bin(op, l, r) => {
            ScalarExpr::bin(*op, translate(ctx, tr, l)?, translate(ctx, tr, r)?)
        }
        ScalarExpr::Un(op, x) => ScalarExpr::Un(*op, Box::new(translate(ctx, tr, x)?)),
        ScalarExpr::Func(f, args) => {
            let mut out = Vec::with_capacity(args.len());
            for a in args {
                out.push(translate(ctx, tr, a)?);
            }
            ScalarExpr::Func(*f, out)
        }
        ScalarExpr::Case {
            operand,
            arms,
            else_expr,
        } => {
            let operand = match operand {
                Some(o) => Some(Box::new(translate(ctx, tr, o)?)),
                None => None,
            };
            let mut out_arms = Vec::with_capacity(arms.len());
            for (w, t) in arms {
                out_arms.push((translate(ctx, tr, w)?, translate(ctx, tr, t)?));
            }
            let else_expr = match else_expr {
                Some(e) => Some(Box::new(translate(ctx, tr, e)?)),
                None => None,
            };
            ScalarExpr::Case {
                operand,
                arms: out_arms,
                else_expr,
            }
        }
        ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
            expr: Box::new(translate(ctx, tr, expr)?),
            negated: *negated,
        },
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => ScalarExpr::Like {
            expr: Box::new(translate(ctx, tr, expr)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        ScalarExpr::GeneralAgg {
            func,
            arg,
            distinct,
        } => ScalarExpr::GeneralAgg {
            func: *func,
            arg: match arg {
                Some(a) => Some(Box::new(translate(ctx, tr, a)?)),
                None => None,
            },
            distinct: *distinct,
        },
    })
}

fn translate_col(ctx: &mut Ctx<'_>, tr: &mut Translation, c: ColRef) -> Option<ScalarExpr> {
    match tr.targets.get(&c.qid)? {
        Target::Exact { qr, colmap } => {
            let ord = *colmap.get(c.ordinal)?;
            Some(ScalarExpr::col(*qr, ord))
        }
        Target::Rejoin { qnew } => Some(ScalarExpr::col(*qnew, c.ordinal)),
        Target::Fragment { root } => {
            let root = *root;
            push_out(ctx, tr, root, c.ordinal)
        }
    }
}

/// The defining expression of output `ordinal` of compensation box `b`,
/// pushed down to mixed space.
pub fn push_out(
    ctx: &mut Ctx<'_>,
    tr: &mut Translation,
    b: BoxId,
    ordinal: usize,
) -> Option<ScalarExpr> {
    let kind = ctx.comp.boxed(b).kind.clone();
    match kind {
        BoxKind::SubsumerRef { target, .. } => {
            if Some(target) == tr.top_subsumer {
                // A fragment rebased onto the subsumer itself: the output is
                // the subsumer's own defining expression (already in the
                // subsumer's QNC space).
                let oc = &ctx.a.boxed(target).outputs[ordinal];
                return Some(match &oc.expr {
                    ScalarExpr::Agg(a) => ScalarExpr::GeneralAgg {
                        func: a.func,
                        arg: a.arg.map(|c| Box::new(ScalarExpr::Col(c))),
                        distinct: a.distinct,
                    },
                    other => other.clone(),
                });
            }
            // Mixed space sees the subsumer child's output through the
            // subsumer's own quantifier.
            let qr = *tr.sub_map.get(&target)?;
            Some(ScalarExpr::col(qr, ordinal))
        }
        BoxKind::Select(_) => {
            let expr = ctx.comp.boxed(b).outputs.get(ordinal)?.expr.clone();
            push_expr(ctx, tr, &expr)
        }
        BoxKind::GroupBy(_) => {
            let expr = ctx.comp.boxed(b).outputs.get(ordinal)?.expr.clone();
            match expr {
                ScalarExpr::Col(c) => push_col(ctx, tr, c),
                ScalarExpr::Agg(a) => {
                    let arg = match a.arg {
                        None => None,
                        Some(c) => Some(Box::new(push_col(ctx, tr, c)?)),
                    };
                    Some(ScalarExpr::GeneralAgg {
                        func: a.func,
                        arg,
                        distinct: a.distinct,
                    })
                }
                _ => None,
            }
        }
        BoxKind::BaseTable { .. } => {
            // A bare base-table leaf in the compensation graph is a rejoin
            // clone reached directly; treat like a rejoin column.
            None
        }
    }
}

/// Push a compensation-box expression down to mixed space.
pub fn push_expr(ctx: &mut Ctx<'_>, tr: &mut Translation, expr: &ScalarExpr) -> Option<ScalarExpr> {
    Some(match expr {
        ScalarExpr::Col(c) => push_col(ctx, tr, *c)?,
        ScalarExpr::Lit(v) => ScalarExpr::Lit(v.clone()),
        ScalarExpr::BaseCol(i) => ScalarExpr::BaseCol(*i),
        ScalarExpr::Bin(op, l, r) => {
            ScalarExpr::bin(*op, push_expr(ctx, tr, l)?, push_expr(ctx, tr, r)?)
        }
        ScalarExpr::Un(op, x) => ScalarExpr::Un(*op, Box::new(push_expr(ctx, tr, x)?)),
        ScalarExpr::Func(f, args) => {
            let mut out = Vec::with_capacity(args.len());
            for a in args {
                out.push(push_expr(ctx, tr, a)?);
            }
            ScalarExpr::Func(*f, out)
        }
        ScalarExpr::Case {
            operand,
            arms,
            else_expr,
        } => {
            let operand = match operand {
                Some(o) => Some(Box::new(push_expr(ctx, tr, o)?)),
                None => None,
            };
            let mut out_arms = Vec::with_capacity(arms.len());
            for (w, t) in arms {
                out_arms.push((push_expr(ctx, tr, w)?, push_expr(ctx, tr, t)?));
            }
            let else_expr = match else_expr {
                Some(e) => Some(Box::new(push_expr(ctx, tr, e)?)),
                None => None,
            };
            ScalarExpr::Case {
                operand,
                arms: out_arms,
                else_expr,
            }
        }
        ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
            expr: Box::new(push_expr(ctx, tr, expr)?),
            negated: *negated,
        },
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => ScalarExpr::Like {
            expr: Box::new(push_expr(ctx, tr, expr)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        ScalarExpr::Agg(_) | ScalarExpr::GeneralAgg { .. } => return None,
    })
}

/// Push a single compensation-graph column reference down to mixed space.
fn push_col(ctx: &mut Ctx<'_>, tr: &mut Translation, c: ColRef) -> Option<ScalarExpr> {
    debug_assert_eq!(c.qid.graph, ctx.comp.id, "push_col expects comp-space refs");
    let input = ctx.comp.input_of(c.qid);
    if ctx.reaches_subsumer(input) {
        push_out(ctx, tr, input, c.ordinal)
    } else if !tr.adopt_enabled {
        // Grouping-fragment path: the fragment (and its rejoins) is reused
        // wholesale, so its column references stay valid as they are.
        Some(ScalarExpr::Col(c))
    } else {
        // A rejoin/scalar clone inside the fragment: adopt its quantifier
        // onto the compensation box under construction.
        let qnew = match tr.adopt.get(&c.qid) {
            Some(&q) => q,
            None => {
                let kind = ctx.comp.quant(c.qid).kind;
                let name = ctx.comp.quant(c.qid).name.clone();
                let q = ctx.comp.add_quant(tr.cbox, input, kind, name);
                tr.adopt.insert(c.qid, q);
                q
            }
        };
        Some(ScalarExpr::col(qnew, c.ordinal))
    }
}

/// Register a rejoin child: clone the subsumee subgraph under `child` into
/// the scratch graph and attach a quantifier on `cbox`.
pub fn add_rejoin(ctx: &mut Ctx<'_>, tr: &mut Translation, side: Side, qe: QuantId) -> QuantId {
    let (child, kind, name) = {
        let g = ctx.egraph(side);
        let quant = g.quant(qe);
        (quant.input, quant.kind, quant.name.clone())
    };
    let clone_root = match side {
        Side::Query => {
            let q = ctx.q;
            ctx.comp.clone_subgraph(q, child)
        }
        Side::Comp => {
            // Already a comp-graph subgraph (e.g. a rejoin clone being
            // re-parented); reference it directly.
            child
        }
    };
    let qnew = ctx.comp.add_quant(tr.cbox, clone_root, kind, name);
    tr.targets.insert(qe, Target::Rejoin { qnew });
    qnew
}

/// Available column for derivation: emit `refer` whenever an expression
/// equals `defines` (mixed space, normalized).
#[derive(Debug, Clone)]
pub struct Avail {
    /// Reference to emit in compensation space.
    pub refer: ColRef,
    /// Mixed-space defining expression (normalized).
    pub defines: ScalarExpr,
}

/// The availability list over the subsumer's outputs (as seen through
/// compensation quantifier `q_sub`) plus any rejoin quantifiers' columns.
pub fn subsumer_avail(ctx: &Ctx<'_>, r: BoxId, q_sub: QuantId) -> Vec<Avail> {
    ctx.a
        .boxed(r)
        .outputs
        .iter()
        .enumerate()
        .map(|(j, oc)| {
            let defines = match &oc.expr {
                ScalarExpr::Agg(a) => ScalarExpr::GeneralAgg {
                    func: a.func,
                    arg: a.arg.map(|c| Box::new(ScalarExpr::Col(c))),
                    distinct: a.distinct,
                },
                other => other.clone(),
            };
            Avail {
                refer: ColRef {
                    qid: q_sub,
                    ordinal: j,
                },
                defines: defines.normalize(),
            }
        })
        .collect()
}

/// Availability entries for a rejoin quantifier: each column defines itself.
pub fn rejoin_avail(ctx: &Ctx<'_>, qnew: QuantId) -> Vec<Avail> {
    let child = ctx.comp.input_of(qnew);
    (0..ctx.comp.boxed(child).outputs.len())
        .map(|i| Avail {
            refer: ColRef {
                qid: qnew,
                ordinal: i,
            },
            defines: ScalarExpr::col(qnew, i),
        })
        .collect()
}
