//! Signature filtering: the cheap pre-navigator candidate test (the "fast
//! filtering phase" of the paper's DB2 implementation, §6).
//!
//! [`graph_signature`] summarizes a QGM graph into a
//! [`MatchSignature`]; [`survives`] then decides whether an AST candidate
//! can possibly match a query, using only signature comparisons and catalog
//! metadata. The test is **sound by construction**: every condition below
//! is a *necessary* condition of the full matcher, so a rejected candidate
//! provably cannot produce a rewrite (`tests/signature_props.rs` checks
//! this property over generated query/AST pairs).
//!
//! The conditions, each traced to the matcher code that makes it necessary:
//!
//! 1. **Shared table** — every match chain grounds in a BaseTable/BaseTable
//!    pair over the *same* table (`patterns::match_boxes`), so an AST that
//!    shares no base table with the query cannot match anywhere.
//! 2. **Required tables** — every AST box must either be matched (which for
//!    a base table requires the query to scan that table) or be a lossless
//!    *extra join* (`patterns::select::extra_join_preds`), which requires a
//!    declared RI constraint whose **parent** is the extra table. Hence any
//!    AST table that is not an FK parent in the catalog must appear in the
//!    query.
//! 3. **GROUP BY presence** — a GROUP BY box only ever matches a GROUP BY
//!    box (same-type precondition of Section 3), and compensation GROUP BY
//!    fragments only arise from query GROUP BY boxes; so an AST containing
//!    a GROUP BY cannot match a query without one.
//! 4. **Aggregate kinds** — for the AST's GROUP BY to be matched, some
//!    query GROUP BY box must pass the aggregate rules of Section 4.1.2:
//!    a non-distinct `COUNT` is only derivable from a non-distinct `COUNT`
//!    (rules a/b and the exact-match bridge), and a non-distinct `SUM` only
//!    from `SUM` or `COUNT` (rule c). MIN/MAX and DISTINCT aggregates can
//!    additionally be derived from grouping columns, so the kind lattice
//!    cannot constrain them soundly and they always pass.
//!
//! Grouping-*column* sets are recorded in the signature for diagnostics but
//! deliberately do not reject: join-predicate equivalence classes (e.g.
//! `flid = lid`) let a query group by a column of one table while the AST
//! groups by the equivalent column of another, so any name-level grouping
//! test would be unsound.

use sumtab_catalog::signature::agg_kind;
use sumtab_catalog::{Catalog, MatchSignature};
use sumtab_parser::AggFunc;
use sumtab_qgm::{AggCall, BoxKind, ColRef, QgmGraph, ScalarExpr};

/// The [`agg_kind`] bit of one aggregate call.
fn agg_bit(call: &AggCall) -> u8 {
    match (call.func, call.distinct) {
        (AggFunc::Count, false) => agg_kind::COUNT,
        (AggFunc::Sum, false) => agg_kind::SUM,
        (AggFunc::Min, _) => agg_kind::MIN,
        (AggFunc::Max, _) => agg_kind::MAX,
        (AggFunc::Count, true) => agg_kind::COUNT_DISTINCT,
        (AggFunc::Sum, true) => agg_kind::SUM_DISTINCT,
        // AVG is normalized to SUM/COUNT during QGM construction; if one
        // ever leaks through, treating it as SUM|COUNT keeps the filter
        // conservative (it demands more of the subsumer, and `survives`
        // only uses the query-side mask to *require* AST kinds).
        (AggFunc::Avg, _) => agg_kind::SUM | agg_kind::COUNT,
    }
}

/// Trace a grouping item to a base-table column, following simple column
/// chains only. Returns a canonical `table.column` label, or `None` for
/// computed grouping expressions (e.g. `year(date)`).
fn trace_base_col(g: &QgmGraph, c: ColRef, depth: usize) -> Option<String> {
    if depth > 64 || c.qid.graph != g.id {
        return None;
    }
    let child = g.quant(c.qid).input;
    let bx = g.boxed(child);
    let oc = bx.outputs.get(c.ordinal)?;
    match (&bx.kind, &oc.expr) {
        (BoxKind::BaseTable { table }, _) => Some(format!(
            "{}.{}",
            table.to_ascii_lowercase(),
            oc.name.to_ascii_lowercase()
        )),
        (_, ScalarExpr::Col(inner)) => trace_base_col(g, *inner, depth + 1),
        _ => None,
    }
}

/// Compute the [`MatchSignature`] of a graph: base tables, per-GROUP-BY
/// aggregate kinds, and traceable grouping columns — over boxes reachable
/// from the root only (dead boxes cannot take part in a match).
pub fn graph_signature(g: &QgmGraph) -> MatchSignature {
    let mut sig = MatchSignature::default();
    for b in g.topo_order() {
        let bx = g.boxed(b);
        match &bx.kind {
            BoxKind::BaseTable { table } => sig.tables.insert(table),
            BoxKind::GroupBy(gb) => {
                let mut mask = 0u8;
                for oc in &bx.outputs {
                    oc.expr.walk(&mut |e| {
                        if let ScalarExpr::Agg(call) = e {
                            mask |= agg_bit(call);
                        }
                        true
                    });
                }
                sig.agg_mask |= mask;
                sig.group_agg_masks.push(mask);
                for item in &gb.items {
                    if let Some(label) = trace_base_col(g, *item, 0) {
                        if let Err(pos) = sig.grouping_cols.binary_search(&label) {
                            sig.grouping_cols.insert(pos, label);
                        }
                    }
                }
            }
            BoxKind::Select(_) | BoxKind::SubsumerRef { .. } => {}
        }
    }
    sig
}

/// Can every aggregate kind in a query GROUP BY box (mask `query`) possibly
/// be derived from an AST offering the kinds in `ast`? Only COUNT and SUM
/// constrain (see module docs); the rest may be grouping-column-derivable.
fn kinds_derivable(query: u8, ast: u8) -> bool {
    if query & agg_kind::COUNT != 0 && ast & agg_kind::COUNT == 0 {
        return false;
    }
    if query & agg_kind::SUM != 0 && ast & (agg_kind::SUM | agg_kind::COUNT) == 0 {
        return false;
    }
    true
}

/// Is `table` the parent of any declared RI constraint? Only such tables
/// can participate as lossless extra joins (Section 4.1.1, condition 1).
fn is_fk_parent(catalog: &Catalog, table: &str) -> bool {
    catalog
        .foreign_keys()
        .iter()
        .any(|fk| fk.parent_table.eq_ignore_ascii_case(table))
}

/// The signature filter: `true` when the AST candidate *may* match the
/// query; `false` only when a match is provably impossible. Sound (never
/// rejects a matchable AST), not complete (a survivor can still fail the
/// full navigator).
pub fn survives(query: &MatchSignature, ast: &MatchSignature, catalog: &Catalog) -> bool {
    // 1. Some base table must be shared for a match chain to ground.
    if !ast.tables.is_empty() && !ast.tables.intersects(&query.tables) {
        return false;
    }
    // 2. AST tables that cannot be lossless extra joins must be scanned by
    //    the query too.
    if !ast.tables.is_subset(&query.tables) {
        for t in ast.tables.names() {
            if !query.tables.contains(t) && !is_fk_parent(catalog, t) {
                return false;
            }
        }
    }
    if ast.has_group_by() {
        // 3. A GROUP BY only matches a GROUP BY.
        if !query.has_group_by() {
            return false;
        }
        // 4. Some query GROUP BY must have kind-derivable aggregates.
        if !query
            .group_agg_masks
            .iter()
            .any(|&m| kinds_derivable(m, ast.agg_mask))
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use sumtab_catalog::Catalog;
    use sumtab_parser::parse_query;
    use sumtab_qgm::build_query;

    fn sig(sql: &str) -> MatchSignature {
        let cat = Catalog::credit_card_sample();
        graph_signature(&build_query(&parse_query(sql).unwrap(), &cat).unwrap())
    }

    #[test]
    fn signature_captures_tables_and_aggs() {
        let s = sig("select faid, sum(qty) as s, count(*) as c \
             from trans, loc where flid = lid group by faid");
        assert_eq!(s.tables.names(), ["loc", "trans"]);
        assert_eq!(s.agg_mask, agg_kind::SUM | agg_kind::COUNT);
        assert_eq!(s.group_agg_masks.len(), 1);
        assert!(s.grouping_cols.contains(&"trans.faid".to_string()), "{s}");
    }

    #[test]
    fn computed_grouping_items_are_skipped_not_mislabeled() {
        let s = sig("select year(date) as y, count(*) as c from trans group by year(date)");
        assert!(s.grouping_cols.is_empty(), "{s}");
        assert!(s.has_group_by());
    }

    #[test]
    fn disjoint_tables_reject() {
        let cat = Catalog::credit_card_sample();
        let q = sig("select qty from trans");
        let a = sig("select state from loc");
        assert!(!survives(&q, &a, &cat));
    }

    #[test]
    fn extra_fk_parent_table_survives() {
        // AST joins loc (an FK parent via trans.flid) that the query does
        // not mention — a lossless extra join, so the filter must keep it.
        let cat = Catalog::credit_card_sample();
        let q = sig("select faid, count(*) as c from trans group by faid");
        let a = sig("select faid, count(*) as c from trans, loc \
             where flid = lid group by faid");
        assert!(survives(&q, &a, &cat));
    }

    #[test]
    fn grouped_ast_rejects_ungrouped_query() {
        let cat = Catalog::credit_card_sample();
        let q = sig("select qty from trans");
        let a = sig("select faid, count(*) as c from trans group by faid");
        assert!(!survives(&q, &a, &cat));
    }

    #[test]
    fn count_needs_count_sum_accepts_count() {
        let cat = Catalog::credit_card_sample();
        let q_count = sig("select faid, count(*) as c from trans group by faid");
        let q_sum = sig("select faid, sum(qty) as s from trans group by faid");
        let a_minmax = sig("select faid, max(qty) as m from trans group by faid");
        let a_count = sig("select faid, flid, count(*) as c from trans group by faid, flid");
        assert!(!survives(&q_count, &a_minmax, &cat), "COUNT needs COUNT");
        assert!(!survives(&q_sum, &a_minmax, &cat), "SUM needs SUM or COUNT");
        assert!(survives(&q_count, &a_count, &cat));
        assert!(survives(&q_sum, &a_count, &cat), "SUM(x*cnt) rule (c)");
    }

    #[test]
    fn ungrouped_ast_never_rejected_on_aggregates() {
        let cat = Catalog::credit_card_sample();
        let q = sig("select faid, count(*) as c from trans group by faid");
        let a = sig("select faid, qty from trans");
        assert!(
            survives(&q, &a, &cat),
            "plain-select AST: compensation groups"
        );
    }
}
