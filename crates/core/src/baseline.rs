//! A syntactic single-block baseline matcher, modeled on the prior work the
//! paper compares against (its reference \[6\], Gupta/Harinarayan/Quass, VLDB 1995).
//!
//! The baseline handles only queries and ASTs that are **single block**
//! (`SELECT ... FROM base tables WHERE ... GROUP BY ... `) and whose columns
//! are **simple base-table columns**:
//!
//! * the FROM table multisets must be identical (no rejoins, no extra
//!   AST tables — the baseline knows nothing about RI constraints);
//! * the WHERE predicate sets must be syntactically identical (no predicate
//!   compensation, no subsumption, no semantic translation);
//! * every query grouping column must be an AST grouping column (coarser
//!   re-grouping is supported — that much was state of the art);
//! * every query aggregate must be re-derivable in the GHQ style:
//!   `COUNT(*)→SUM(cnt)`, `SUM(c)→SUM(sum_c)`, `MIN/MAX(c)→MIN/MAX(m_c)`,
//!   with arguments that are simple base columns;
//! * no HAVING, no subqueries, no grouping sets, no expressions in the
//!   SELECT or GROUP BY lists.
//!
//! The coverage experiment (EXPERIMENTS.md, E-P2) runs this baseline against
//! the full example suite to quantify the paper's contribution claims 1–3.

use std::collections::BTreeMap;
use sumtab_qgm::{AggFunc, BoxKind, ColRef, QgmGraph, QuantKind, ScalarExpr};

/// A column identified by (table name, occurrence index, column ordinal) —
/// the baseline's world view.
type BaseCol = (String, usize, usize);

/// The normalized single-block shape the baseline can reason about.
#[derive(Debug)]
pub struct SingleBlock {
    /// FROM tables in occurrence order.
    pub tables: Vec<String>,
    /// Normalized predicate strings.
    pub predicates: Vec<String>,
    /// Grouping columns (empty for pure SPJ blocks — those are accepted
    /// only when the AST is also SPJ with identical shape).
    pub grouping: Vec<BaseCol>,
    /// Aggregates: (function, argument column or None for `COUNT(*)`).
    pub aggregates: Vec<(AggFunc, Option<BaseCol>)>,
    /// Projected plain columns (must be grouping columns when grouped).
    pub projected: Vec<BaseCol>,
}

/// Extract the single-block shape, or `None` when the graph is outside the
/// baseline's domain (multi-block, expressions, subqueries, cubes, ...).
pub fn single_block(g: &QgmGraph) -> Option<SingleBlock> {
    // Accept exactly Select ← [GroupBy ← Select] ← base tables.
    let root = g.boxed(g.root);
    if !root.is_select() {
        return None;
    }
    let (gb, lower) = {
        if root.quants.len() != 1 {
            // A plain SPJ block: treat the root itself as lower.
            (None, g.root)
        } else {
            let child = g.input_of(root.quants[0]);
            match &g.boxed(child).kind {
                BoxKind::GroupBy(gbx) => {
                    if gbx.sets.len() != 1 || gbx.sets[0].len() != gbx.items.len() {
                        return None; // grouping sets are out of scope
                    }
                    if g.boxed(child).quants.len() != 1 {
                        return None;
                    }
                    let lower = g.input_of(g.boxed(child).quants[0]);
                    (Some(child), lower)
                }
                BoxKind::Select(_) | BoxKind::BaseTable { .. } => (None, g.root),
                _ => return None,
            }
        }
    };
    // No HAVING for aggregated blocks.
    if gb.is_some() && !root.as_select()?.predicates.is_empty() {
        return None;
    }
    let lower_box = g.boxed(lower);
    if !lower_box.is_select() {
        return None;
    }

    // FROM: base tables only, no scalar quantifiers.
    let mut tables = Vec::new();
    let mut table_of_quant: BTreeMap<u32, (String, usize)> = BTreeMap::new();
    for &q in &lower_box.quants {
        if g.quant(q).kind != QuantKind::Foreach {
            return None;
        }
        match &g.boxed(g.input_of(q)).kind {
            BoxKind::BaseTable { table } => {
                let occurrence = tables.iter().filter(|t| *t == table).count();
                table_of_quant.insert(q.idx, (table.clone(), occurrence));
                tables.push(table.clone());
            }
            _ => return None,
        }
    }
    let base_col = |c: ColRef| -> Option<BaseCol> {
        let (t, occ) = table_of_quant.get(&c.qid.idx)?;
        Some((t.clone(), *occ, c.ordinal))
    };
    let simple_col = |e: &ScalarExpr| -> Option<BaseCol> {
        match e {
            ScalarExpr::Col(c) => base_col(*c),
            _ => None,
        }
    };

    // Predicates: normalized syntactic form with columns rendered as
    // (table, occurrence, ordinal) so alias names do not matter.
    let mut predicates = Vec::new();
    for p in &lower_box.as_select()?.predicates {
        let mut ok = true;
        let rendered = p.normalize().map_cols(&mut |c| match base_col(c) {
            Some((t, o, ord)) => ScalarExpr::Like {
                expr: Box::new(ScalarExpr::Lit(format!("{t}#{o}.{ord}").into())),
                pattern: String::new(),
                negated: false,
            },
            None => {
                ok = false;
                ScalarExpr::Col(c)
            }
        });
        if !ok {
            return None;
        }
        predicates.push(format!("{rendered:?}"));
    }
    predicates.sort();

    // Grouping, aggregates, projection.
    let mut grouping = Vec::new();
    let mut aggregates = Vec::new();
    let mut projected = Vec::new();
    match gb {
        Some(gbid) => {
            let gbx = g.boxed(gbid);
            let gbk = gbx.as_group_by()?;
            for item in &gbk.items {
                // The lower select must pass the column through unchanged.
                let lower_expr = &lower_box.outputs[item.ordinal].expr;
                grouping.push(simple_col(lower_expr)?);
            }
            for oc in &gbx.outputs[gbk.items.len()..] {
                let ScalarExpr::Agg(a) = &oc.expr else {
                    return None;
                };
                if a.distinct {
                    return None;
                }
                let arg = match a.arg {
                    None => None,
                    Some(c) => Some(simple_col(&lower_box.outputs[c.ordinal].expr)?),
                };
                aggregates.push((a.func, arg));
            }
            // Root select must project grouping columns / aggregates only.
            for oc in &root.outputs {
                match &oc.expr {
                    ScalarExpr::Col(c) => {
                        if c.ordinal < gbk.items.len() {
                            projected.push(grouping[c.ordinal].clone());
                        }
                        // Aggregate projections are implied by `aggregates`.
                    }
                    _ => return None,
                }
            }
        }
        None => {
            for oc in &lower_box.outputs {
                projected.push(simple_col(&oc.expr)?);
            }
        }
    }
    Some(SingleBlock {
        tables,
        predicates,
        grouping,
        aggregates,
        projected,
    })
}

/// Can the baseline rewrite `query` using `ast`? (Pure decision — the
/// baseline's value in this repository is quantifying coverage.)
pub fn baseline_matches(query: &QgmGraph, ast: &QgmGraph) -> bool {
    let (Some(q), Some(a)) = (single_block(query), single_block(ast)) else {
        return false;
    };
    // Identical table multisets.
    let mut qt = q.tables.clone();
    let mut at = a.tables.clone();
    qt.sort();
    at.sort();
    if qt != at {
        return false;
    }
    // Identical predicate sets (syntactic).
    if q.predicates != a.predicates {
        return false;
    }
    // Grouping containment.
    if !q.grouping.iter().all(|c| a.grouping.contains(c)) {
        return false;
    }
    // SPJ-only blocks: projection containment.
    if q.grouping.is_empty() && q.aggregates.is_empty() {
        return a.grouping.is_empty()
            && a.aggregates.is_empty()
            && q.projected.iter().all(|c| a.projected.contains(c));
    }
    // Aggregate re-derivability in the GHQ style.
    let has_count = a
        .aggregates
        .iter()
        .any(|(f, arg)| *f == AggFunc::Count && arg.is_none());
    q.aggregates.iter().all(|(f, arg)| match (f, arg) {
        (AggFunc::Count, None) => has_count,
        (AggFunc::Sum, Some(c)) => {
            a.aggregates
                .iter()
                .any(|(af, aa)| *af == AggFunc::Sum && aa.as_ref() == Some(c))
                || (a.grouping.contains(c) && has_count)
        }
        (AggFunc::Min, Some(c)) => {
            a.aggregates
                .iter()
                .any(|(af, aa)| *af == AggFunc::Min && aa.as_ref() == Some(c))
                || a.grouping.contains(c)
        }
        (AggFunc::Max, Some(c)) => {
            a.aggregates
                .iter()
                .any(|(af, aa)| *af == AggFunc::Max && aa.as_ref() == Some(c))
                || a.grouping.contains(c)
        }
        (AggFunc::Count, Some(c)) => a
            .aggregates
            .iter()
            .any(|(af, aa)| *af == AggFunc::Count && aa.as_ref() == Some(c)),
        _ => false,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use sumtab_catalog::Catalog;
    use sumtab_parser::parse_query;
    use sumtab_qgm::build_query;

    fn g(sql: &str) -> QgmGraph {
        let cat = Catalog::credit_card_sample();
        build_query(&parse_query(sql).unwrap(), &cat).unwrap()
    }

    #[test]
    fn simple_regrouping_is_covered() {
        let q = g("select faid, count(*) as c from trans group by faid");
        let a = g("select faid, flid, count(*) as c from trans group by faid, flid");
        assert!(baseline_matches(&q, &a));
    }

    #[test]
    fn predicate_mismatch_is_rejected() {
        let q = g("select faid, count(*) as c from trans where qty > 2 group by faid");
        let a = g("select faid, count(*) as c from trans group by faid");
        assert!(!baseline_matches(&q, &a), "no predicate compensation");
    }

    #[test]
    fn expressions_are_out_of_scope() {
        let q = g("select year(date) as y, count(*) as c from trans group by year(date)");
        let a = g("select year(date) as y, count(*) as c from trans group by year(date)");
        assert!(
            !baseline_matches(&q, &a),
            "grouping expressions exceed the baseline"
        );
    }

    #[test]
    fn multi_block_is_out_of_scope() {
        let q = g("select tcnt, count(*) as n from \
                   (select faid, count(*) as tcnt from trans group by faid) as v \
                   group by tcnt");
        let a = g("select faid, count(*) as tcnt from trans group by faid");
        assert!(!baseline_matches(&q, &a));
    }

    #[test]
    fn rejoins_are_out_of_scope() {
        let q = g("select state, count(*) as c from trans, loc where flid = lid group by state");
        let a = g("select flid, count(*) as c from trans group by flid");
        assert!(!baseline_matches(&q, &a), "different table sets");
    }

    #[test]
    fn sum_via_grouping_column_works() {
        let q = g("select faid, sum(qty) as s from trans group by faid");
        let a = g("select faid, qty, count(*) as c from trans group by faid, qty");
        assert!(baseline_matches(&q, &a), "SUM(qty) = SUM(qty * cnt)");
    }

    #[test]
    fn spj_projection_containment() {
        let q = g("select tid from trans");
        let a = g("select tid, qty from trans");
        assert!(baseline_matches(&q, &a));
        let a2 = g("select qty from trans");
        assert!(!baseline_matches(&q, &a2));
    }
}
