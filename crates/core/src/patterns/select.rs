//! SELECT/SELECT matching: Sections 4.1.1 (exact child matches), 4.2.3
//! (SELECT-only child compensation), and 4.2.4 (GROUP BY child
//! compensation with no common joins).

use crate::context::{Ctx, MatchEntry, Side};
use crate::derive::derive;
use crate::equiv::{equiv_eq, subsumes, ColEquiv};
use crate::patterns::{child_entry, fragment_has_group_by};
use crate::translate::{
    add_rejoin, push_expr, push_out, rejoin_avail, subsumer_avail, translate, Avail, Target,
    Translation,
};
use std::collections::{HashMap, HashSet};
use sumtab_qgm::{BoxId, BoxKind, ColRef, OutputCol, QuantId, QuantKind, ScalarExpr, SelectBox};

/// One paired (subsumee child, subsumer child).
struct Pair {
    qe: QuantId,
    qr: QuantId,
    entry: MatchEntry,
    kind: QuantKind,
}

/// Cap on the number of child-pairing assignments tried per box pair
/// (self-joins make pairings ambiguous — the paper's footnote 3; we relax
/// the one-candidate assumption by bounded backtracking over assignments).
const MAX_PAIRINGS: usize = 24;

/// One subsumee child's pairing options: its quantifier, kind, and the
/// subsumer children it could match (with their entries).
type PairingCandidates = Vec<(QuantId, QuantKind, Vec<(QuantId, MatchEntry)>)>;

/// Match two SELECT boxes.
pub fn match_selects(ctx: &mut Ctx<'_>, side: Side, e: BoxId, r: BoxId) -> Option<MatchEntry> {
    // Enumerate candidate subsumer children per subsumee child.
    let ebox = ctx.egraph(side).boxed(e).clone();
    let rbox = ctx.a.boxed(r).clone();
    let mut candidates: PairingCandidates = Vec::new();
    for &qe in &ebox.quants {
        let (ce, ekind) = {
            let g = ctx.egraph(side);
            (g.input_of(qe), g.quant(qe).kind)
        };
        let mut cands = Vec::new();
        for &qr in &rbox.quants {
            if ctx.a.quant(qr).kind != ekind {
                continue;
            }
            let cr = ctx.a.input_of(qr);
            if let Some(entry) = child_entry(ctx, side, ce, cr) {
                cands.push((qr, entry));
            }
        }
        // Exact entries first: they make the cheapest compensations and the
        // greedy first assignment is usually right.
        cands.sort_by_key(|(_, entry)| !entry.exact);
        candidates.push((qe, ekind, cands));
    }

    // Backtracking over assignments (each subsumer child used at most once;
    // a subsumee child may also stay unmatched and become a rejoin).
    let mut assignment: Vec<Option<usize>> = vec![None; candidates.len()];
    let mut tried = 0usize;
    try_assignments(ctx, side, e, r, &candidates, &mut assignment, 0, &mut tried)
}

/// Depth-first enumeration of pairings; the first assignment for which the
/// full pattern succeeds wins.
#[allow(clippy::too_many_arguments)]
fn try_assignments(
    ctx: &mut Ctx<'_>,
    side: Side,
    e: BoxId,
    r: BoxId,
    candidates: &PairingCandidates,
    assignment: &mut Vec<Option<usize>>,
    depth: usize,
    tried: &mut usize,
) -> Option<MatchEntry> {
    if *tried >= MAX_PAIRINGS {
        return None;
    }
    if depth == candidates.len() {
        *tried += 1;
        let mut pairs = Vec::new();
        let mut rejoins = Vec::new();
        for (i, (qe, kind, cands)) in candidates.iter().enumerate() {
            match assignment[i] {
                Some(c) => {
                    let (qr, entry) = &cands[c];
                    pairs.push(Pair {
                        qe: *qe,
                        qr: *qr,
                        entry: entry.clone(),
                        kind: *kind,
                    });
                }
                None => rejoins.push(*qe),
            }
        }
        return match_selects_with_pairing(ctx, side, e, r, pairs, rejoins);
    }
    let (_, _, cands) = &candidates[depth];
    let taken: HashSet<QuantId> = assignment[..depth]
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.map(|c| candidates[i].2[c].0))
        .collect();
    for (c, cand) in cands.iter().enumerate() {
        if taken.contains(&cand.0) {
            continue;
        }
        assignment[depth] = Some(c);
        if let Some(m) = try_assignments(ctx, side, e, r, candidates, assignment, depth + 1, tried)
        {
            return Some(m);
        }
    }
    // Leave this child unmatched (rejoin).
    assignment[depth] = None;
    try_assignments(ctx, side, e, r, candidates, assignment, depth + 1, tried)
}

/// The body of the SELECT/SELECT pattern for one concrete child pairing.
// Non-exact match entries carry a compensation root by construction
// (`comp_root.unwrap()` on pairs filtered for `!exact`), and the grouping
// fragment is installed before it is read back.
#[allow(clippy::unwrap_used)]
fn match_selects_with_pairing(
    ctx: &mut Ctx<'_>,
    side: Side,
    e: BoxId,
    r: BoxId,
    pairs: Vec<Pair>,
    rejoins: Vec<QuantId>,
) -> Option<MatchEntry> {
    let ebox = ctx.egraph(side).boxed(e).clone();
    let rbox = ctx.a.boxed(r).clone();
    let epreds: Vec<ScalarExpr> = ebox.as_select()?.predicates.clone();
    let rpreds: Vec<ScalarExpr> = rbox.as_select()?.predicates.clone();
    let used_r: HashSet<QuantId> = pairs.iter().map(|p| p.qr).collect();

    // Condition (Section 3): at least one Foreach child pair.
    if !pairs.iter().any(|p| p.kind == QuantKind::Foreach) {
        return None;
    }

    // Grouping fragments (4.2.4): at most one, and it must be the only
    // matched Foreach pair (no common joins).
    let grouping_pairs: Vec<usize> = pairs
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.entry.exact && fragment_has_group_by(ctx, p.entry.comp_root.unwrap()))
        .map(|(i, _)| i)
        .collect();
    if grouping_pairs.len() > 1 {
        return None;
    }
    let has_grouping_frag = !grouping_pairs.is_empty();
    if has_grouping_frag {
        let foreach_pairs = pairs
            .iter()
            .filter(|p| p.kind == QuantKind::Foreach)
            .count();
        if foreach_pairs != 1 {
            return None;
        }
    }

    // ------------------------------------------------------------------
    // 2. Extra subsumer children must join losslessly (RI constraints).
    // ------------------------------------------------------------------
    let extras: Vec<QuantId> = rbox
        .quants
        .iter()
        .copied()
        .filter(|q| !used_r.contains(q) && ctx.a.quant(*q).kind == QuantKind::Foreach)
        .collect();
    if has_grouping_frag && !extras.is_empty() {
        return None;
    }
    let mut extra_pred_idx: HashSet<usize> = HashSet::new();
    {
        // Extras may chain (snowflake dimensions), so iterate to fixpoint.
        let mut trusted: HashSet<QuantId> = used_r.clone();
        let mut pending = extras.clone();
        loop {
            let before = pending.len();
            pending.retain(|&qx| match extra_join_preds(ctx, &rpreds, qx, &trusted) {
                Some(idxs) => {
                    extra_pred_idx.extend(idxs);
                    trusted.insert(qx);
                    false
                }
                None => true,
            });
            if pending.is_empty() {
                break;
            }
            if pending.len() == before {
                return None; // some extra join is not provably lossless
            }
        }
    }

    // ------------------------------------------------------------------
    // 3. Compensation scaffolding + translation targets.
    // ------------------------------------------------------------------
    let sref = ctx.make_subsumer_ref(r);
    let cbox = ctx.comp.add_box(BoxKind::Select(SelectBox::default()));
    let q_sub = ctx.comp.add_quant(cbox, sref, QuantKind::Foreach, "ast");
    let mut tr = Translation::new(cbox);
    tr.top_subsumer = Some(r);
    for &qr in &rbox.quants {
        tr.sub_map.insert(ctx.a.input_of(qr), qr);
    }
    // On the grouping-fragment path, clone the fragment privately and
    // rebase it onto the subsumer BEFORE translating, so translated
    // expressions and later derivations reference the same boxes; keep the
    // fragment's internal rejoins un-adopted (the fragment is reused
    // wholesale).
    let mut grouping_froot: Option<BoxId> = None;
    if has_grouping_frag {
        tr.adopt_enabled = false;
        // Rebasing needs subsumer-level equivalences (predicates + child
        // output classes), independent of the not-yet-translated subsumee
        // predicates.
        let mut eq0 = ColEquiv::new();
        for p in &rpreds {
            eq0.absorb_predicate(&p.normalize());
        }
        let frag = pairs[grouping_pairs[0]].entry.comp_root.unwrap();
        let qr_g = pairs[grouping_pairs[0]].qr;
        let snapshot = ctx.comp.clone();
        let froot = ctx.comp.clone_subgraph(&snapshot, frag);
        rebase_fragment(ctx, froot, r, qr_g, &eq0)?;
        grouping_froot = Some(froot);
    }
    for (i, p) in pairs.iter().enumerate() {
        let target = if p.entry.exact {
            Target::Exact {
                qr: p.qr,
                colmap: p.entry.colmap.clone(),
            }
        } else if has_grouping_frag && i == grouping_pairs[0] {
            Target::Fragment {
                root: grouping_froot.unwrap(),
            }
        } else {
            Target::Fragment {
                root: p.entry.comp_root.unwrap(),
            }
        };
        tr.targets.insert(p.qe, target);
    }
    let mut rejoin_quants = Vec::new();
    for &qe in &rejoins {
        rejoin_quants.push(add_rejoin(ctx, &mut tr, side, qe));
    }

    // ------------------------------------------------------------------
    // 4. Translate subsumee predicates and child-compensation predicates.
    // ------------------------------------------------------------------
    let mut source_preds: Vec<ScalarExpr> = Vec::new();
    for p in &epreds {
        source_preds.push(translate(ctx, &mut tr, p)?.normalize());
    }
    let n_sub_preds = source_preds.len();
    for (i, p) in pairs.iter().enumerate() {
        let root = if has_grouping_frag && i == grouping_pairs[0] {
            grouping_froot
        } else {
            p.entry.comp_root
        };
        if let Some(root) = root {
            for fp in fragment_preds(ctx, &mut tr, root)? {
                source_preds.push(fp.normalize());
            }
        }
    }

    // ------------------------------------------------------------------
    // 5. Equivalence classes. `build_eq(exclude)` omits one source
    //    predicate's contribution: an equivalence induced by a predicate
    //    must not be used to derive that same predicate (it would collapse
    //    `pgid = fpgid` into a tautology and lose the join).
    // ------------------------------------------------------------------
    let build_eq = |ctx: &Ctx<'_>, exclude: Option<usize>| -> ColEquiv {
        let mut eq = ColEquiv::new();
        for p in &rpreds {
            eq.absorb_predicate(&p.normalize());
        }
        for &qr in &rbox.quants {
            let cr = ctx.a.input_of(qr);
            if let Some(classes) = ctx.a_classes.get(&cr) {
                let mut by_class: HashMap<usize, usize> = HashMap::new();
                for (ord, &cls) in classes.iter().enumerate() {
                    if let Some(&first) = by_class.get(&cls) {
                        eq.union(
                            ColRef {
                                qid: qr,
                                ordinal: first,
                            },
                            ColRef {
                                qid: qr,
                                ordinal: ord,
                            },
                        );
                    } else {
                        by_class.insert(cls, ord);
                    }
                }
            }
        }
        for (j, p) in source_preds.iter().enumerate() {
            if Some(j) != exclude {
                eq.absorb_predicate(p);
            }
        }
        eq
    };
    let eq = build_eq(ctx, None);

    // ------------------------------------------------------------------
    // 6. Condition 2: every subsumer predicate (except extra-join
    //    predicates) must match or subsume a source predicate.
    // ------------------------------------------------------------------
    let mut absorbed = vec![false; source_preds.len()];
    for (i, rp) in rpreds.iter().enumerate() {
        if extra_pred_idx.contains(&i) {
            continue;
        }
        let rpn = rp.normalize();
        let mut satisfied = false;
        for (j, sp) in source_preds.iter().enumerate() {
            if equiv_eq(&rpn, sp, &eq) {
                absorbed[j] = true;
                satisfied = true;
                break;
            }
        }
        if !satisfied {
            satisfied = source_preds.iter().any(|sp| subsumes(&rpn, sp, &eq));
        }
        if !satisfied {
            return None;
        }
    }

    // ------------------------------------------------------------------
    // 7. Translate outputs, then derive everything over the availability
    //    list (subsumer outputs + rejoin columns).
    // ------------------------------------------------------------------
    let mut outs_t = Vec::with_capacity(ebox.outputs.len());
    for oc in &ebox.outputs {
        outs_t.push(translate(ctx, &mut tr, &oc.expr)?.normalize());
    }

    if has_grouping_frag {
        // Fragment predicates (index >= n_sub_preds) are applied inside the
        // cloned fragment itself; only the subsumee's own residual
        // predicates need re-derivation on top.
        let mut derive_mask = vec![false; source_preds.len()];
        for (j, m) in derive_mask.iter_mut().enumerate() {
            *m = j < n_sub_preds && !absorbed[j];
        }
        return grouping_fragment_comp(
            ctx,
            &mut tr,
            grouping_froot.unwrap(),
            &ebox,
            &source_preds,
            &derive_mask,
            &outs_t,
            &eq,
            cbox,
            q_sub,
        );
    }

    let mut avail = subsumer_avail(ctx, r, q_sub);
    let adopted: Vec<QuantId> = tr.adopt.values().copied().collect();
    for &qn in rejoin_quants.iter().chain(adopted.iter()) {
        avail.extend(rejoin_avail(ctx, qn));
    }

    let mut cpreds = Vec::new();
    for (j, sp) in source_preds.iter().enumerate() {
        if absorbed[j] {
            continue;
        }
        let eq_j = build_eq(ctx, Some(j));
        cpreds.push(derive(sp, &avail, &eq_j)?);
    }
    let mut couts = Vec::with_capacity(outs_t.len());
    for t in &outs_t {
        couts.push(derive(t, &avail, &eq)?);
    }
    let _ = n_sub_preds;

    // ------------------------------------------------------------------
    // 8. Exactness (footnote 5) or compensation assembly.
    // ------------------------------------------------------------------
    let no_rejoins = rejoin_quants.is_empty() && tr.adopt.is_empty();
    let pure_projection = couts
        .iter()
        .all(|c| matches!(c, ScalarExpr::Col(cr) if cr.qid == q_sub));
    if no_rejoins && cpreds.is_empty() && pure_projection {
        let colmap = couts
            .iter()
            .map(|c| match c {
                ScalarExpr::Col(cr) => cr.ordinal,
                _ => unreachable!(),
            })
            .collect();
        return Some(MatchEntry::exact(colmap));
    }
    {
        let cb = ctx.comp.boxed_mut(cbox);
        cb.outputs = ebox
            .outputs
            .iter()
            .zip(couts)
            .map(|(oc, expr)| OutputCol {
                name: oc.name.clone(),
                expr,
            })
            .collect();
        match &mut cb.kind {
            BoxKind::Select(s) => s.predicates = cpreds,
            _ => unreachable!(),
        }
    }
    Some(MatchEntry::with_comp(cbox))
}

/// Identify the predicates that implement a lossless extra join for
/// subsumer child `qx`: equi-joins covering the extra table's full primary
/// key against non-nullable foreign-key columns of a trusted child, with a
/// declared RI constraint (Section 4.1.1, condition 1).
fn extra_join_preds(
    ctx: &Ctx<'_>,
    rpreds: &[ScalarExpr],
    qx: QuantId,
    trusted: &HashSet<QuantId>,
) -> Option<Vec<usize>> {
    let extra_box = ctx.a.input_of(qx);
    let BoxKind::BaseTable { table } = &ctx.a.boxed(extra_box).kind else {
        return None;
    };
    let parent = ctx.catalog.table(table)?;
    if parent.primary_key.is_empty() {
        return None;
    }
    // pk ordinal -> (other quantifier, other ordinal, predicate index)
    let mut found: HashMap<usize, (QuantId, usize, usize)> = HashMap::new();
    for (i, p) in rpreds.iter().enumerate() {
        let ScalarExpr::Bin(op, l, r) = p else {
            continue;
        };
        if *op != sumtab_qgm::BinOp::Eq {
            continue;
        }
        let (ScalarExpr::Col(a), ScalarExpr::Col(b)) = (&**l, &**r) else {
            continue;
        };
        for (x, o) in [(a, b), (b, a)] {
            if x.qid == qx && parent.primary_key.contains(&x.ordinal) && trusted.contains(&o.qid) {
                found.entry(x.ordinal).or_insert((o.qid, o.ordinal, i));
            }
        }
    }
    if !parent.primary_key.iter().all(|k| found.contains_key(k)) {
        return None;
    }
    // All FK columns must come from one child with a declared constraint.
    let (fk_quant, ..) = found[&parent.primary_key[0]];
    let child_box = ctx.a.input_of(fk_quant);
    let BoxKind::BaseTable { table: child_table } = &ctx.a.boxed(child_box).kind else {
        return None;
    };
    let child = ctx.catalog.table(child_table)?;
    let fk_cols: Vec<usize> = parent
        .primary_key
        .iter()
        .map(|k| {
            let (q, ord, _) = found[k];
            if q != fk_quant {
                usize::MAX
            } else {
                ord
            }
        })
        .collect();
    if fk_cols.contains(&usize::MAX) {
        return None;
    }
    let declared = ctx.catalog.foreign_keys_from(child_table).any(|fk| {
        fk.parent_table == parent.name
            && fk.child_columns == fk_cols
            && fk.parent_columns == parent.primary_key
    });
    if !declared {
        return None;
    }
    if fk_cols.iter().any(|&c| child.columns[c].nullable) {
        return None; // NULL FK values would make the join lossy
    }
    Some(parent.primary_key.iter().map(|k| found[k].2).collect())
}

/// Collect every predicate applied inside a compensation fragment's
/// subsumer path, pushed down to mixed space.
pub fn fragment_preds(
    ctx: &mut Ctx<'_>,
    tr: &mut Translation,
    root: BoxId,
) -> Option<Vec<ScalarExpr>> {
    let mut out = Vec::new();
    let mut stack = vec![root];
    let mut seen = HashSet::new();
    while let Some(b) = stack.pop() {
        if !seen.insert(b) || !ctx.reaches_subsumer(b) {
            continue;
        }
        let bx = ctx.comp.boxed(b).clone();
        if let BoxKind::Select(s) = &bx.kind {
            for p in &s.predicates {
                out.push(push_expr(ctx, tr, p)?);
            }
        }
        for &q in &bx.quants {
            stack.push(ctx.comp.input_of(q));
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Section 4.2.4: SELECT subsumee over a grouping child compensation.
// ---------------------------------------------------------------------------

/// Build the compensation when the single matched child carries a GROUP BY
/// compensation fragment: clone the fragment, rebase its `SubsumerRef` from
/// the subsumer's child onto the subsumer itself (the *pullup*), grow it
/// with any additionally needed columns (Section 6's on-demand QCL
/// creation, e.g. `totcnt` in Figure 11), and top it with a SELECT that
/// applies the residual predicates and computes the subsumee's outputs.
#[allow(clippy::too_many_arguments)]
fn grouping_fragment_comp(
    ctx: &mut Ctx<'_>,
    tr: &mut Translation,
    froot: BoxId,
    ebox: &sumtab_qgm::QgmBox,
    source_preds: &[ScalarExpr],
    derive_mask: &[bool],
    outs_t: &[ScalarExpr],
    eq: &ColEquiv,
    cbox: BoxId,
    q_sub_unused: QuantId,
) -> Option<MatchEntry> {
    // The scaffolding quantifier over the subsumer is not used on this
    // path — the compensation consumes the rebased fragment instead.
    // Detach it so it does not become a stray cross join.
    ctx.comp
        .boxed_mut(cbox)
        .quants
        .retain(|&q| q != q_sub_unused);

    // The compensation box consumes the (already cloned and rebased)
    // fragment.
    let q_f = ctx.comp.add_quant(cbox, froot, QuantKind::Foreach, "regrp");

    // Derive residual predicates and outputs through the fragment,
    // creating fragment columns on demand.
    let mut cpreds = Vec::new();
    for (j, sp) in source_preds.iter().enumerate() {
        if !derive_mask[j] {
            continue;
        }
        cpreds.push(derive_through_fragment(ctx, tr, froot, q_f, sp, eq)?);
    }
    let mut couts = Vec::with_capacity(outs_t.len());
    for t in outs_t {
        couts.push(derive_through_fragment(ctx, tr, froot, q_f, t, eq)?);
    }

    {
        let cb = ctx.comp.boxed_mut(cbox);
        cb.outputs = ebox
            .outputs
            .iter()
            .zip(couts)
            .map(|(oc, expr)| OutputCol {
                name: oc.name.clone(),
                expr,
            })
            .collect();
        match &mut cb.kind {
            BoxKind::Select(s) => s.predicates = cpreds,
            _ => unreachable!(),
        }
    }
    Some(MatchEntry::with_comp(cbox))
}

/// Repoint the fragment's `SubsumerRef` leaf from the subsumer's child to
/// the subsumer `r`, remapping every referenced ordinal `j` to an `r` output
/// that preserves the child column (`r.outputs[k] ≡ Col(qr_g, j)`).
fn rebase_fragment(
    ctx: &mut Ctx<'_>,
    froot: BoxId,
    r: BoxId,
    qr_g: QuantId,
    eq: &ColEquiv,
) -> Option<()> {
    // Find the quantifier over the SubsumerRef leaf.
    let mut target_quant: Option<QuantId> = None;
    let mut stack = vec![froot];
    let mut seen = HashSet::new();
    while let Some(b) = stack.pop() {
        if !seen.insert(b) {
            continue;
        }
        for &q in &ctx.comp.boxed(b).quants.clone() {
            let input = ctx.comp.input_of(q);
            if matches!(ctx.comp.boxed(input).kind, BoxKind::SubsumerRef { .. }) {
                target_quant = Some(q);
            } else {
                stack.push(input);
            }
        }
    }
    let q_old = target_quant?;
    let owner = ctx.comp.quant(q_old).owner;

    // Ordinal remap: child output j -> r output k.
    let remap = |j: usize| -> Option<usize> {
        let probe = ScalarExpr::col(qr_g, j);
        ctx.a
            .boxed(r)
            .outputs
            .iter()
            .position(|oc| equiv_eq(&oc.expr.normalize(), &probe, eq))
    };
    // Collect ordinals used by the owner box.
    let owner_box = ctx.comp.boxed(owner).clone();
    let mut used: Vec<usize> = Vec::new();
    let mut collect = |e: &ScalarExpr| {
        for c in e.col_refs() {
            if c.qid == q_old {
                used.push(c.ordinal);
            }
        }
    };
    for oc in &owner_box.outputs {
        collect(&oc.expr);
    }
    match &owner_box.kind {
        BoxKind::Select(s) => {
            for p in &s.predicates {
                collect(p);
            }
        }
        BoxKind::GroupBy(g) => {
            for it in &g.items {
                if it.qid == q_old {
                    used.push(it.ordinal);
                }
            }
        }
        _ => {}
    }
    used.sort_unstable();
    used.dedup();
    let mut ord_map: HashMap<usize, usize> = HashMap::new();
    for j in used {
        ord_map.insert(j, remap(j)?);
    }

    // Build the new leaf and repoint the quantifier.
    let new_leaf = ctx.make_subsumer_ref(r);
    ctx.comp.quants[q_old.idx as usize].input = new_leaf;

    // Rewrite ordinals in the owner box.
    let rewrite = |e: &ScalarExpr| -> ScalarExpr {
        e.map_cols(&mut |c| {
            if c.qid == q_old {
                ScalarExpr::col(q_old, ord_map[&c.ordinal])
            } else {
                ScalarExpr::Col(c)
            }
        })
    };
    let new_outputs: Vec<OutputCol> = owner_box
        .outputs
        .iter()
        .map(|oc| OutputCol {
            name: oc.name.clone(),
            expr: match &oc.expr {
                ScalarExpr::Agg(a) => ScalarExpr::Agg(sumtab_qgm::AggCall {
                    func: a.func,
                    arg: a.arg.map(|c| {
                        if c.qid == q_old {
                            ColRef {
                                qid: q_old,
                                ordinal: ord_map[&c.ordinal],
                            }
                        } else {
                            c
                        }
                    }),
                    distinct: a.distinct,
                }),
                other => rewrite(other),
            },
        })
        .collect();
    let new_kind = match &owner_box.kind {
        BoxKind::Select(s) => BoxKind::Select(SelectBox {
            predicates: s.predicates.iter().map(rewrite).collect(),
        }),
        BoxKind::GroupBy(g) => BoxKind::GroupBy(sumtab_qgm::GroupByBox {
            items: g
                .items
                .iter()
                .map(|c| {
                    if c.qid == q_old {
                        ColRef {
                            qid: q_old,
                            ordinal: ord_map[&c.ordinal],
                        }
                    } else {
                        *c
                    }
                })
                .collect(),
            sets: g.sets.clone(),
        }),
        other => other.clone(),
    };
    let ob = ctx.comp.boxed_mut(owner);
    ob.outputs = new_outputs;
    ob.kind = new_kind;
    Some(())
}

/// Derive a mixed-space expression over the (rebased) fragment's outputs,
/// creating new fragment columns on demand for aggregate-free subtrees.
fn derive_through_fragment(
    ctx: &mut Ctx<'_>,
    tr: &mut Translation,
    froot: BoxId,
    q_f: QuantId,
    expr: &ScalarExpr,
    eq: &ColEquiv,
) -> Option<ScalarExpr> {
    // Compositional derivation over the fragment's existing outputs first.
    let n = ctx.comp.boxed(froot).outputs.len();
    let mut avail = Vec::with_capacity(n);
    for j in 0..n {
        if let Some(d) = push_out(ctx, tr, froot, j) {
            avail.push(Avail {
                refer: ColRef {
                    qid: q_f,
                    ordinal: j,
                },
                defines: d.normalize(),
            });
        }
    }
    if let Some(d) = derive(expr, &avail, eq) {
        return Some(d);
    }
    // Aggregate-free, group-invariant subtree: request a fragment column
    // (Section 6's on-demand QCL creation, e.g. `totcnt` in Figure 11).
    if !expr.contains_agg() && is_group_invariant(ctx, expr) {
        if let Some(j) = ensure_fragment_col(ctx, tr, froot, expr, eq) {
            return Some(ScalarExpr::col(q_f, j));
        }
    }
    // Recurse structurally.
    Some(match expr {
        ScalarExpr::Lit(v) => ScalarExpr::Lit(v.clone()),
        ScalarExpr::Bin(op, l, r2) => ScalarExpr::bin(
            *op,
            derive_through_fragment(ctx, tr, froot, q_f, l, eq)?,
            derive_through_fragment(ctx, tr, froot, q_f, r2, eq)?,
        ),
        ScalarExpr::Un(op, x) => ScalarExpr::Un(
            *op,
            Box::new(derive_through_fragment(ctx, tr, froot, q_f, x, eq)?),
        ),
        ScalarExpr::Func(f, args) => {
            let mut out = Vec::with_capacity(args.len());
            for a in args {
                out.push(derive_through_fragment(ctx, tr, froot, q_f, a, eq)?);
            }
            ScalarExpr::Func(*f, out)
        }
        ScalarExpr::IsNull { expr: x, negated } => ScalarExpr::IsNull {
            expr: Box::new(derive_through_fragment(ctx, tr, froot, q_f, x, eq)?),
            negated: *negated,
        },
        ScalarExpr::Like {
            expr: x,
            pattern,
            negated,
        } => ScalarExpr::Like {
            expr: Box::new(derive_through_fragment(ctx, tr, froot, q_f, x, eq)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        _ => return None,
    })
}

/// Is the mixed-space expression provably constant over the whole input
/// (and hence trivially group-invariant)? True when every column it
/// references is produced by a scalar subquery of the subsumer — like
/// `totcnt` in Figure 11. Such columns may be added to a compensation
/// GROUP BY's grouping sets without changing the groups.
fn is_group_invariant(ctx: &Ctx<'_>, x: &ScalarExpr) -> bool {
    x.col_refs().iter().all(|c| {
        c.qid.graph == ctx.a.id && ctx.a.quant(c.qid).kind == sumtab_qgm::QuantKind::Scalar
    })
}

/// Ensure the fragment box `b` outputs a column equal to the mixed-space,
/// aggregate-free, group-invariant expression `x`; returns its output
/// ordinal. For GROUP BY boxes the column is added as a *grouping* item on
/// every grouping set — sound because the caller has established group
/// invariance.
fn ensure_fragment_col(
    ctx: &mut Ctx<'_>,
    tr: &mut Translation,
    b: BoxId,
    x: &ScalarExpr,
    eq: &ColEquiv,
) -> Option<usize> {
    // Existing output?
    let n = ctx.comp.boxed(b).outputs.len();
    for j in 0..n {
        if let Some(d) = push_out(ctx, tr, b, j) {
            if equiv_eq(&d.normalize(), x, eq) {
                return Some(j);
            }
        }
    }
    let kind = ctx.comp.boxed(b).kind.clone();
    match kind {
        BoxKind::Select(_) => {
            // Derive over this box's own availability: its SubsumerRef
            // columns and rejoin columns.
            let quants = ctx.comp.boxed(b).quants.clone();
            let mut avail: Vec<Avail> = Vec::new();
            for &q in &quants {
                let input = ctx.comp.input_of(q);
                match &ctx.comp.boxed(input).kind {
                    BoxKind::SubsumerRef { target, .. } => {
                        let target = *target;
                        let n_out = ctx.a.boxed(target).outputs.len();
                        for k in 0..n_out {
                            let defines = subsumer_output_defines(ctx, tr, target, k)?;
                            avail.push(Avail {
                                refer: ColRef { qid: q, ordinal: k },
                                defines: defines.normalize(),
                            });
                        }
                    }
                    _ => {
                        let n_out = ctx.comp.boxed(input).outputs.len();
                        for k in 0..n_out {
                            avail.push(Avail {
                                refer: ColRef { qid: q, ordinal: k },
                                defines: ScalarExpr::col(q, k),
                            });
                        }
                    }
                }
            }
            let derived = derive(x, &avail, eq)?;
            let bx = ctx.comp.boxed_mut(b);
            bx.outputs.push(OutputCol {
                name: format!("x{}", bx.outputs.len()),
                expr: derived,
            });
            Some(bx.outputs.len() - 1)
        }
        BoxKind::GroupBy(_) => {
            let q_child = ctx.comp.boxed(b).quants[0];
            let child = ctx.comp.input_of(q_child);
            let child_ord = ensure_fragment_col(ctx, tr, child, x, eq)?;
            let new_item = ColRef {
                qid: q_child,
                ordinal: child_ord,
            };
            let bx = ctx.comp.boxed_mut(b);
            let new_idx = match &mut bx.kind {
                BoxKind::GroupBy(g) => {
                    let idx = g.items.len();
                    g.items.push(new_item);
                    for s in &mut g.sets {
                        s.push(idx);
                    }
                    idx
                }
                _ => unreachable!(),
            };
            let _ = new_idx;
            bx.outputs.push(OutputCol {
                name: format!("x{}", bx.outputs.len()),
                expr: ScalarExpr::Col(new_item),
            });
            Some(bx.outputs.len() - 1)
        }
        _ => None,
    }
}

/// The mixed-space defining expression of output `k` of subsumer box
/// `target` (used when a fragment sits directly on a `SubsumerRef`).
fn subsumer_output_defines(
    ctx: &Ctx<'_>,
    tr: &Translation,
    target: BoxId,
    k: usize,
) -> Option<ScalarExpr> {
    if Some(target) == tr.top_subsumer {
        let oc = &ctx.a.boxed(target).outputs[k];
        return Some(match &oc.expr {
            ScalarExpr::Agg(a) => ScalarExpr::GeneralAgg {
                func: a.func,
                arg: a.arg.map(|c| Box::new(ScalarExpr::Col(c))),
                distinct: a.distinct,
            },
            other => other.clone(),
        });
    }
    let qr = *tr.sub_map.get(&target)?;
    Some(ScalarExpr::col(qr, k))
}
