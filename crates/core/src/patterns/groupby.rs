//! GROUP BY matching: Sections 4.1.2 (exact child matches), 4.2.1
//! (SELECT-only child compensation), 4.2.2 (GROUP BY child compensation),
//! and the multidimensional patterns of Section 5 (simple query vs cube
//! AST, cube query vs cube AST).

use crate::context::{Ctx, MatchEntry, Side};
use crate::derive::derive;
use crate::equiv::{equiv_eq, ColEquiv};
use crate::patterns::select::fragment_preds;
use crate::patterns::{child_entry, fragment_has_group_by};
use crate::translate::{rejoin_avail, translate, Avail, Target, Translation};
use std::collections::{BTreeSet, HashMap, HashSet};
use sumtab_qgm::{
    AggCall, AggFunc, BinOp, BoxId, BoxKind, ColRef, GroupByBox, OutputCol, QuantId, QuantKind,
    ScalarExpr, SelectBox,
};

/// Match two GROUP BY boxes.
// The derived-output walk advances `agg_iter` once per `EOut::Agg` entry,
// and both were built from the same output list, so `next()` cannot run dry.
#[allow(clippy::unwrap_used)]
pub fn match_groupbys(ctx: &mut Ctx<'_>, side: Side, e: BoxId, r: BoxId) -> Option<MatchEntry> {
    let ebox = ctx.egraph(side).boxed(e).clone();
    let rbox = ctx.a.boxed(r).clone();
    let egb = ebox.as_group_by()?.clone();
    let rgb = rbox.as_group_by()?.clone();
    let qe = *ebox.quants.first()?;
    let qr = *rbox.quants.first()?;
    let ce = ctx.egraph(side).input_of(qe);
    let cr = ctx.a.input_of(qr);
    let entry = child_entry(ctx, side, ce, cr)?;

    // Section 4.2.2: the child compensation itself contains grouping.
    if let Some(root) = entry.comp_root {
        if fragment_has_group_by(ctx, root) {
            return match_gb_with_gb_comp(ctx, side, e, r, root);
        }
    }

    // ------------------------------------------------------------------
    // Scaffolding: "Sel-2C1" over the subsumer.
    // ------------------------------------------------------------------
    let sref = ctx.make_subsumer_ref(r);
    let cbox = ctx.comp.add_box(BoxKind::Select(SelectBox::default()));
    let q_sub = ctx.comp.add_quant(cbox, sref, QuantKind::Foreach, "ast");
    let mut tr = Translation::new(cbox);
    tr.top_subsumer = Some(r);
    tr.sub_map.insert(cr, qr);
    tr.targets.insert(
        qe,
        match &entry {
            MatchEntry {
                exact: true,
                colmap,
                ..
            } => Target::Exact {
                qr,
                colmap: colmap.clone(),
            },
            MatchEntry {
                comp_root: Some(root),
                ..
            } => Target::Fragment { root: *root },
            _ => return None,
        },
    );

    // ------------------------------------------------------------------
    // Equivalences: subsumer-child output classes + fragment predicates.
    // ------------------------------------------------------------------
    let fpreds: Vec<ScalarExpr> = match entry.comp_root {
        Some(root) => fragment_preds(ctx, &mut tr, root)?
            .into_iter()
            .map(|p| p.normalize())
            .collect(),
        None => Vec::new(),
    };
    // `build_eq(exclude)` omits one fragment predicate's contribution: a
    // predicate's own equivalence must not be used to derive it.
    let cr_classes: Option<Vec<usize>> = ctx.a_classes.get(&cr).cloned();
    let build_eq = |exclude: Option<usize>| -> ColEquiv {
        let mut eq = ColEquiv::new();
        if let Some(classes) = &cr_classes {
            let mut by_class: HashMap<usize, usize> = HashMap::new();
            for (ord, &cls) in classes.iter().enumerate() {
                if let Some(&first) = by_class.get(&cls) {
                    eq.union(
                        ColRef {
                            qid: qr,
                            ordinal: first,
                        },
                        ColRef {
                            qid: qr,
                            ordinal: ord,
                        },
                    );
                } else {
                    by_class.insert(cls, ord);
                }
            }
        }
        for (j, p) in fpreds.iter().enumerate() {
            if Some(j) != exclude {
                eq.absorb_predicate(p);
            }
        }
        eq
    };
    let eq = build_eq(None);

    // ------------------------------------------------------------------
    // Translate subsumee grouping items and aggregate outputs.
    // ------------------------------------------------------------------
    let mut t_items = Vec::with_capacity(egb.items.len());
    for item in &egb.items {
        t_items.push(translate(ctx, &mut tr, &ScalarExpr::Col(*item))?.normalize());
    }
    // Output layout: grouping outputs reference items; aggregate outputs
    // are AggCalls. Record per output what it is.
    enum EOut {
        Item(usize),
        Agg(AggCall, ScalarExpr), // call + translated GeneralAgg
    }
    let mut e_outs: Vec<EOut> = Vec::with_capacity(ebox.outputs.len());
    for oc in &ebox.outputs {
        match &oc.expr {
            ScalarExpr::Col(c) => {
                let idx = egb.items.iter().position(|it| it == c)?;
                e_outs.push(EOut::Item(idx));
            }
            ScalarExpr::Agg(a) => {
                let t = translate(ctx, &mut tr, &ScalarExpr::Agg(*a))?.normalize();
                e_outs.push(EOut::Agg(*a, t));
            }
            _ => return None,
        }
    }

    // ------------------------------------------------------------------
    // Availability over the subsumer's *grouping* columns and rejoins.
    // ------------------------------------------------------------------
    let n_r_items = rgb.items.len();
    let adopted: Vec<QuantId> = tr.adopt.values().copied().collect();
    let mut grouping_avail: Vec<Avail> = (0..n_r_items)
        .map(|j| Avail {
            refer: ColRef {
                qid: q_sub,
                ordinal: j,
            },
            defines: ScalarExpr::Col(rgb.items[j]).normalize(),
        })
        .collect();
    for &qn in &adopted {
        grouping_avail.extend(rejoin_avail(ctx, qn));
    }

    // Condition 1 (4.2.1): grouping items derivable from subsumer grouping
    // columns and rejoin columns.
    let mut d_items = Vec::with_capacity(t_items.len());
    for t in &t_items {
        d_items.push(derive(t, &grouping_avail, &eq)?);
    }
    // Pullup condition (4.2.1 cond 3): fragment predicates likewise, each
    // derived without its own equivalence contribution.
    let mut d_preds = Vec::with_capacity(fpreds.len());
    for (j, p) in fpreds.iter().enumerate() {
        let eq_j = build_eq(Some(j));
        d_preds.push(derive(p, &grouping_avail, &eq_j)?);
    }

    // Subsumer grouping ordinals used so far.
    let mut used: BTreeSet<usize> = BTreeSet::new();
    let collect_used = |e: &ScalarExpr, used: &mut BTreeSet<usize>| {
        for c in e.col_refs() {
            if c.qid == q_sub && c.ordinal < n_r_items {
                used.insert(c.ordinal);
            }
        }
    };
    for d in d_items.iter().chain(d_preds.iter()) {
        collect_used(d, &mut used);
    }

    // Bijective item map (for regroup avoidance): e-item i → r-item j.
    let item_map: Option<Vec<usize>> = d_items
        .iter()
        .map(|d| match d {
            ScalarExpr::Col(c) if c.qid == q_sub && c.ordinal < n_r_items => Some(c.ordinal),
            _ => None,
        })
        .collect();

    // Exact aggregate matches (possible only without regrouping).
    let r_aggs: Vec<(usize, AggCall)> = rbox
        .outputs
        .iter()
        .enumerate()
        .filter_map(|(k, oc)| match &oc.expr {
            ScalarExpr::Agg(a) => Some((k, *a)),
            _ => None,
        })
        .collect();
    let exact_aggs: Option<Vec<usize>> = e_outs
        .iter()
        .filter_map(|o| match o {
            EOut::Agg(call, t) => Some((call, t)),
            EOut::Item(_) => None,
        })
        .map(|(call, t)| {
            r_aggs
                .iter()
                .find(|(_, ra)| agg_exact_match(ctx, cr, call, t, ra, &eq))
                .map(|(k, _)| *k)
        })
        .collect();

    // ------------------------------------------------------------------
    // Can regrouping be avoided? (4.1.2 / 4.2.1 / 5.1 / 5.2 fast paths.)
    // ------------------------------------------------------------------
    let fpred_used: BTreeSet<usize> = {
        let mut s = BTreeSet::new();
        for d in &d_preds {
            collect_used(d, &mut s);
        }
        s
    };
    let no_regroup = (|| -> Option<(Vec<Vec<usize>>, Vec<usize>)> {
        let m = item_map.as_ref()?;
        let exact_aggs = exact_aggs.as_ref()?;
        if !rejoins_one_to_n(ctx, &adopted, &d_preds, q_sub, n_r_items) {
            return None;
        }
        // Each subsumee grouping set must map onto an existing subsumer
        // grouping set, with the fragment predicates' columns contained in
        // every selected cuboid.
        let mut selected: Vec<Vec<usize>> = Vec::new();
        for s_e in &egb.sets {
            let mapped: BTreeSet<usize> = s_e.iter().map(|&i| m[i]).collect();
            if mapped.len() != s_e.len() {
                return None; // two items collapsed onto one subsumer column
            }
            if !fpred_used.iter().all(|u| mapped.contains(u)) {
                return None;
            }
            let found = rgb.sets.iter().find(|s_r| {
                let sr: BTreeSet<usize> = s_r.iter().copied().collect();
                sr == mapped
            })?;
            selected.push(found.clone());
        }
        Some((selected, exact_aggs.clone()))
    })();

    if let Some((selected_sets, exact_aggs)) = no_regroup {
        // Compensation: a single SELECT applying pulled-up predicates and a
        // slicing predicate (disjunction over the selected cuboids when the
        // subsumer is multidimensional).
        let mut cpreds = d_preds.clone();
        if rgb.sets.len() > 1 {
            cpreds.push(slicing_predicate(ctx, cr, &rgb, q_sub, &selected_sets)?);
        }
        let mut agg_iter = exact_aggs.iter();
        let couts: Vec<ScalarExpr> = e_outs
            .iter()
            .map(|o| match o {
                EOut::Item(i) => d_items[*i].clone(),
                EOut::Agg(..) => ScalarExpr::col(q_sub, *agg_iter.next().unwrap()),
            })
            .collect();
        let trivial = adopted.is_empty()
            && cpreds.is_empty()
            && couts
                .iter()
                .all(|c| matches!(c, ScalarExpr::Col(cr2) if cr2.qid == q_sub));
        if trivial {
            let colmap = couts
                .iter()
                .map(|c| match c {
                    ScalarExpr::Col(c2) => c2.ordinal,
                    _ => unreachable!(),
                })
                .collect();
            return Some(MatchEntry::exact(colmap));
        }
        let cb = ctx.comp.boxed_mut(cbox);
        cb.outputs = ebox
            .outputs
            .iter()
            .zip(couts)
            .map(|(oc, expr)| OutputCol {
                name: oc.name.clone(),
                expr,
            })
            .collect();
        match &mut cb.kind {
            BoxKind::Select(s) => s.predicates = cpreds,
            _ => unreachable!(),
        }
        return Some(MatchEntry::with_comp(cbox));
    }

    // ------------------------------------------------------------------
    // Regrouping compensation: SELECT (pulled-up predicates + slicing +
    // computed columns) below a GROUP BY that re-groups by the subsumee's
    // grouping sets and re-aggregates per rules (a)–(g).
    // ------------------------------------------------------------------
    let mut plans: Vec<AggPlan> = Vec::new();
    for o in &e_outs {
        if let EOut::Agg(call, t) = o {
            let plan = regroup_plan(
                ctx,
                side,
                e,
                cr,
                call,
                t,
                &r_aggs,
                &grouping_avail,
                &eq,
                q_sub,
            )?;
            collect_used(&plan.cbox_expr, &mut used);
            plans.push(plan);
        }
    }
    // Select the smallest subsumer cuboid covering every used grouping col.
    let s_r: Vec<usize> = rgb
        .sets
        .iter()
        .filter(|s| {
            let sr: BTreeSet<usize> = s.iter().copied().collect();
            used.iter().all(|u| sr.contains(u))
        })
        .min_by_key(|s| s.len())?
        .clone();
    let mut cpreds = d_preds;
    if rgb.sets.len() > 1 {
        cpreds.push(slicing_predicate(ctx, cr, &rgb, q_sub, &[s_r])?);
    }

    // cbox outputs: derived grouping items first, then aggregate inputs.
    let n_e_items = egb.items.len();
    let mut cb_outputs: Vec<OutputCol> = d_items
        .iter()
        .enumerate()
        .map(|(i, d)| OutputCol {
            name: format!("g{i}"),
            expr: d.clone(),
        })
        .collect();
    for (k, plan) in plans.iter().enumerate() {
        cb_outputs.push(OutputCol {
            name: format!("a{k}"),
            expr: plan.cbox_expr.clone(),
        });
    }
    {
        let cb = ctx.comp.boxed_mut(cbox);
        cb.outputs = cb_outputs;
        match &mut cb.kind {
            BoxKind::Select(s) => s.predicates = cpreds,
            _ => unreachable!(),
        }
    }

    // The regrouping GROUP BY box.
    let cgb = ctx.comp.add_box(BoxKind::GroupBy(GroupByBox {
        items: vec![],
        sets: egb.sets.clone(),
    }));
    let q_c = ctx.comp.add_quant(cgb, cbox, QuantKind::Foreach, "regrp");
    let items: Vec<ColRef> = (0..n_e_items)
        .map(|i| ColRef {
            qid: q_c,
            ordinal: i,
        })
        .collect();
    let mut agg_idx = 0usize;
    let outputs: Vec<OutputCol> = ebox
        .outputs
        .iter()
        .zip(&e_outs)
        .map(|(oc, o)| OutputCol {
            name: oc.name.clone(),
            expr: match o {
                EOut::Item(i) => ScalarExpr::Col(items[*i]),
                EOut::Agg(..) => {
                    let plan = &plans[agg_idx];
                    agg_idx += 1;
                    ScalarExpr::Agg(AggCall {
                        func: plan.outer,
                        arg: Some(ColRef {
                            qid: q_c,
                            ordinal: n_e_items + agg_idx - 1,
                        }),
                        distinct: plan.distinct,
                    })
                }
            },
        })
        .collect();
    {
        let gbx = ctx.comp.boxed_mut(cgb);
        gbx.outputs = outputs;
        match &mut gbx.kind {
            BoxKind::GroupBy(g) => g.items = items,
            _ => unreachable!(),
        }
    }
    Some(MatchEntry::with_comp(cgb))
}

/// How one subsumee aggregate is recomputed under regrouping.
struct AggPlan {
    /// The expression the compensation SELECT must output (e.g. the
    /// subsumer's `cnt` column, or `y * cnt` for rule (c)'s second form).
    cbox_expr: ScalarExpr,
    /// The re-aggregation function applied by the compensation GROUP BY.
    outer: AggFunc,
    /// Re-aggregate with DISTINCT?
    distinct: bool,
}

/// Exact aggregate-QCL match (used when no regrouping happens): same
/// function and distinctness with equivalent arguments, plus the
/// `COUNT(*) ≡ COUNT(z)` bridge for non-nullable `z`.
fn agg_exact_match(
    ctx: &Ctx<'_>,
    cr: BoxId,
    call: &AggCall,
    translated: &ScalarExpr,
    r_agg: &AggCall,
    eq: &ColEquiv,
) -> bool {
    let ScalarExpr::GeneralAgg {
        func,
        arg,
        distinct,
    } = translated
    else {
        return false;
    };
    let _ = call;
    // MIN/MAX are insensitive to DISTINCT.
    let dist_ok = *distinct == r_agg.distinct || matches!(func, AggFunc::Min | AggFunc::Max);
    if *func == r_agg.func && dist_ok {
        match (arg, r_agg.arg) {
            (None, None) => return true,
            (Some(a), Some(c)) if equiv_eq(a, &ScalarExpr::Col(c), eq) => return true,
            _ => {}
        }
    }
    // COUNT(*) ≡ COUNT(z) with z non-nullable.
    if *func == AggFunc::Count && !distinct && r_agg.func == AggFunc::Count && !r_agg.distinct {
        match (arg, r_agg.arg) {
            (None, Some(z)) => return !col_nullable(ctx, cr, z),
            (Some(a), None) => return !mixed_nullable(ctx, a),
            _ => {}
        }
    }
    false
}

/// Derivation rules (a)–(g) of Section 4.1.2 for re-aggregation.
#[allow(clippy::too_many_arguments)]
// Aggregate ordinals are aligned between subsumee and subsumer before this
// plan is built, so the iterator and argument lookups cannot run dry.
#[allow(clippy::unwrap_used)]
fn regroup_plan(
    ctx: &Ctx<'_>,
    side: Side,
    e: BoxId,
    cr: BoxId,
    call: &AggCall,
    translated: &ScalarExpr,
    r_aggs: &[(usize, AggCall)],
    grouping_avail: &[Avail],
    eq: &ColEquiv,
    q_sub: QuantId,
) -> Option<AggPlan> {
    let _ = (side, e, call);
    let ScalarExpr::GeneralAgg {
        func,
        arg,
        distinct,
    } = translated
    else {
        return None;
    };
    let find_count = || -> Option<usize> {
        r_aggs
            .iter()
            .find(|(_, ra)| {
                ra.func == AggFunc::Count
                    && !ra.distinct
                    && match ra.arg {
                        None => true,
                        Some(z) => !col_nullable(ctx, cr, z),
                    }
            })
            .map(|(k, _)| *k)
    };
    let find_same = |f: AggFunc, a: &ScalarExpr| -> Option<usize> {
        r_aggs
            .iter()
            .find(|(_, ra)| {
                ra.func == f
                    && !ra.distinct
                    && ra.arg.is_some_and(|c| equiv_eq(a, &ScalarExpr::Col(c), eq))
            })
            .map(|(k, _)| *k)
    };
    match (func, distinct) {
        // (a) COUNT(*) → SUM(cnt)
        (AggFunc::Count, false) if arg.is_none() => {
            let k = find_count()?;
            Some(AggPlan {
                cbox_expr: ScalarExpr::col(q_sub, k),
                outer: AggFunc::Sum,
                distinct: false,
            })
        }
        // (b) COUNT(x) → SUM(COUNT(y)); if x non-nullable, COUNT(*) works too.
        (AggFunc::Count, false) => {
            let x = arg.as_deref().unwrap();
            let k = r_aggs
                .iter()
                .find(|(_, ra)| {
                    ra.func == AggFunc::Count
                        && !ra.distinct
                        && ra.arg.is_some_and(|c| equiv_eq(x, &ScalarExpr::Col(c), eq))
                })
                .map(|(k, _)| *k)
                .or_else(|| {
                    if !mixed_nullable(ctx, x) {
                        find_count()
                    } else {
                        None
                    }
                })?;
            Some(AggPlan {
                cbox_expr: ScalarExpr::col(q_sub, k),
                outer: AggFunc::Sum,
                distinct: false,
            })
        }
        // (c) SUM(x) → SUM(sm), or SUM(y * cnt) when x is derivable from
        // grouping columns.
        (AggFunc::Sum, false) => {
            let x = arg.as_deref()?;
            if let Some(k) = find_same(AggFunc::Sum, x) {
                return Some(AggPlan {
                    cbox_expr: ScalarExpr::col(q_sub, k),
                    outer: AggFunc::Sum,
                    distinct: false,
                });
            }
            let d_x = derive(x, grouping_avail, eq)?;
            let k = find_count()?;
            Some(AggPlan {
                cbox_expr: ScalarExpr::bin(BinOp::Mul, d_x, ScalarExpr::col(q_sub, k)),
                outer: AggFunc::Sum,
                distinct: false,
            })
        }
        // (d)/(e) MAX/MIN → MAX(max)/MIN(min), or the grouping column itself.
        (AggFunc::Max, _) | (AggFunc::Min, _) => {
            let f = *func;
            let x = arg.as_deref()?;
            if let Some(k) = find_same(f, x) {
                return Some(AggPlan {
                    cbox_expr: ScalarExpr::col(q_sub, k),
                    outer: f,
                    distinct: false,
                });
            }
            let d_x = derive(x, grouping_avail, eq)?;
            Some(AggPlan {
                cbox_expr: d_x,
                outer: f,
                distinct: false,
            })
        }
        // (f) COUNT(DISTINCT x) → COUNT(DISTINCT y) for grouping-derivable x.
        (AggFunc::Count, true) => {
            let x = arg.as_deref()?;
            let d_x = derive(x, grouping_avail, eq)?;
            Some(AggPlan {
                cbox_expr: d_x,
                outer: AggFunc::Count,
                distinct: true,
            })
        }
        // (g) SUM(DISTINCT x) → SUM(DISTINCT y) for grouping-derivable x.
        (AggFunc::Sum, true) => {
            let x = arg.as_deref()?;
            let d_x = derive(x, grouping_avail, eq)?;
            Some(AggPlan {
                cbox_expr: d_x,
                outer: AggFunc::Sum,
                distinct: true,
            })
        }
        (AggFunc::Avg, _) => None, // normalized away during QGM build
    }
}

/// Are all adopted rejoins 1:N with the rejoin on the "1" side? True when
/// each rejoin's full primary key is equated (in the derived compensation
/// predicates) with group-constant expressions, so the join neither
/// duplicates subsumer rows nor splits groups (Figure 8's optimization).
fn rejoins_one_to_n(
    ctx: &Ctx<'_>,
    adopted: &[QuantId],
    d_preds: &[ScalarExpr],
    q_sub: QuantId,
    n_r_items: usize,
) -> bool {
    adopted.iter().all(|&qx| {
        let b = ctx.comp.input_of(qx);
        let BoxKind::BaseTable { table } = &ctx.comp.boxed(b).kind else {
            return false;
        };
        let Some(t) = ctx.catalog.table(table) else {
            return false;
        };
        if t.primary_key.is_empty() {
            return false;
        }
        t.primary_key.iter().all(|&k| {
            d_preds.iter().any(|p| {
                let ScalarExpr::Bin(BinOp::Eq, l, r) = p else {
                    return false;
                };
                for (a, other) in [(&**l, &**r), (&**r, &**l)] {
                    if let ScalarExpr::Col(c) = a {
                        if c.qid == qx && c.ordinal == k {
                            // Other side must be group-constant: only
                            // subsumer grouping columns.
                            let ok = other
                                .col_refs()
                                .iter()
                                .all(|o| o.qid == q_sub && o.ordinal < n_r_items);
                            if ok {
                                return true;
                            }
                        }
                    }
                }
                false
            })
        })
    })
}

/// The slicing predicate of Section 5: select exactly the rows of the given
/// cuboids via IS NULL / IS NOT NULL over the subsumer's grouping columns.
/// Requires the underlying grouping columns to be non-nullable (the paper's
/// stated assumption), otherwise slicing is ambiguous and we bail.
fn slicing_predicate(
    ctx: &Ctx<'_>,
    cr: BoxId,
    rgb: &GroupByBox,
    q_sub: QuantId,
    cuboids: &[Vec<usize>],
) -> Option<ScalarExpr> {
    for item in &rgb.items {
        if col_nullable(ctx, cr, *item) {
            return None;
        }
    }
    let mut alts: Vec<ScalarExpr> = Vec::with_capacity(cuboids.len());
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    for s in cuboids {
        let mut sorted = s.clone();
        sorted.sort_unstable();
        if !seen.insert(sorted.clone()) {
            continue;
        }
        let conj: Vec<ScalarExpr> = (0..rgb.items.len())
            .map(|j| ScalarExpr::IsNull {
                expr: Box::new(ScalarExpr::col(q_sub, j)),
                negated: sorted.contains(&j),
            })
            .collect();
        alts.push(ScalarExpr::and_all(conj));
    }
    let mut it = alts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, |acc, a| ScalarExpr::bin(BinOp::Or, acc, a)))
}

/// Nullability of a subsumer-child output column.
fn col_nullable(ctx: &Ctx<'_>, cr: BoxId, c: ColRef) -> bool {
    ctx.a_meta
        .get(&cr)
        .and_then(|v| v.get(c.ordinal))
        .map(|m| m.nullable)
        .unwrap_or(true)
}

/// Conservative nullability of a mixed-space expression: `false` only when
/// provably non-nullable.
fn mixed_nullable(ctx: &Ctx<'_>, e: &ScalarExpr) -> bool {
    match e {
        ScalarExpr::Lit(v) => v.is_null(),
        // Rejoin columns (foreign-graph refs): unknown, stay conservative.
        ScalarExpr::Col(c) if c.qid.graph != ctx.a.id => true,
        ScalarExpr::Col(c) => {
            let input = ctx.a.input_of(c.qid);
            ctx.a_meta
                .get(&input)
                .and_then(|v| v.get(c.ordinal))
                .map(|m| m.nullable)
                .unwrap_or(true)
        }
        ScalarExpr::Func(_, args) => args.iter().any(|a| mixed_nullable(ctx, a)),
        ScalarExpr::Bin(op, l, r) => {
            matches!(op, BinOp::Div | BinOp::Mod)
                || mixed_nullable(ctx, l)
                || mixed_nullable(ctx, r)
        }
        ScalarExpr::Un(_, x) => mixed_nullable(ctx, x),
        ScalarExpr::IsNull { .. } => false,
        _ => true,
    }
}

// ---------------------------------------------------------------------------
// Section 4.2.2: GROUP BY subsumee whose child compensation contains a
// GROUP BY — recursive invocation of the match function.
// ---------------------------------------------------------------------------

/// Match by recursion: find the lowest GROUP BY box in the fragment, match
/// it against the subsumer, then copy the fragment boxes above it — and the
/// subsumee itself — on top of the intermediate compensation (Figure 9).
fn match_gb_with_gb_comp(
    ctx: &mut Ctx<'_>,
    side: Side,
    e: BoxId,
    r: BoxId,
    frag_root: BoxId,
) -> Option<MatchEntry> {
    // Walk the subsumer path from the fragment root down, recording the
    // chain; the recursion target is the lowest GROUP BY on the path.
    let mut chain: Vec<BoxId> = Vec::new();
    let mut cur = frag_root;
    loop {
        chain.push(cur);
        let next = ctx
            .comp
            .boxed(cur)
            .quants
            .iter()
            .map(|&q| ctx.comp.input_of(q))
            .find(|&b| ctx.reaches_subsumer(b));
        match next {
            Some(b) if !matches!(ctx.comp.boxed(b).kind, BoxKind::SubsumerRef { .. }) => {
                cur = b;
            }
            _ => break,
        }
    }
    let gb_pos = chain
        .iter()
        .rposition(|&b| ctx.comp.boxed(b).is_group_by())?;
    let lowest = chain[gb_pos];

    // Recursive match of the fragment's GROUP BY against the subsumer.
    let sub_entry = match_groupbys(ctx, Side::Comp, lowest, r)?;

    // Base of the new compensation: the intermediate compensation (or a
    // projection wrapper for an exact intermediate match).
    let mut below = match (&sub_entry.comp_root, sub_entry.exact) {
        (Some(root), _) => *root,
        (None, true) => {
            let sref = ctx.make_subsumer_ref(r);
            let wrap = ctx.comp.add_box(BoxKind::Select(SelectBox::default()));
            let qw = ctx.comp.add_quant(wrap, sref, QuantKind::Foreach, "ast");
            let names: Vec<String> = ctx
                .comp
                .boxed(lowest)
                .outputs
                .iter()
                .map(|oc| oc.name.clone())
                .collect();
            ctx.comp.boxed_mut(wrap).outputs = sub_entry
                .colmap
                .iter()
                .zip(names)
                .map(|(&ord, name)| OutputCol {
                    name,
                    expr: ScalarExpr::col(qw, ord),
                })
                .collect();
            wrap
        }
        _ => return None,
    };

    // Copy the chain boxes above the lowest GROUP BY, bottom-up.
    for i in (0..gb_pos).rev() {
        let old_child = chain[i + 1];
        below = copy_box_redirect(ctx, Side::Comp, chain[i], old_child, below)?;
    }
    // Finally copy the subsumee itself on top.
    let ce = {
        let g = ctx.egraph(side);
        g.input_of(*g.boxed(e).quants.first()?)
    };
    let top = copy_box_redirect(ctx, side, e, ce, below)?;
    Some(MatchEntry::with_comp(top))
}

/// Copy box `b` (from `side`'s graph) into the scratch graph, redirecting
/// the quantifier that consumed `old_child` to consume `new_child`; other
/// children are referenced in place (comp side) or cloned (query side).
fn copy_box_redirect(
    ctx: &mut Ctx<'_>,
    side: Side,
    b: BoxId,
    old_child: BoxId,
    new_child: BoxId,
) -> Option<BoxId> {
    let src = ctx.egraph(side).boxed(b).clone();
    let new_id = ctx.comp.add_box(match &src.kind {
        BoxKind::Select(_) => BoxKind::Select(SelectBox::default()),
        BoxKind::GroupBy(_) => BoxKind::GroupBy(GroupByBox {
            items: vec![],
            sets: vec![],
        }),
        _ => return None,
    });
    let mut quant_map: HashMap<QuantId, QuantId> = HashMap::new();
    for &q in &src.quants {
        let (input, kind, name) = {
            let g = ctx.egraph(side);
            let quant = g.quant(q);
            (quant.input, quant.kind, quant.name.clone())
        };
        let target = if input == old_child {
            new_child
        } else {
            match side {
                Side::Comp => input,
                Side::Query => {
                    let qg = ctx.q;
                    ctx.comp.clone_subgraph(qg, input)
                }
            }
        };
        let nq = ctx.comp.add_quant(new_id, target, kind, name);
        quant_map.insert(q, nq);
    }
    let remap = |e: &ScalarExpr| sumtab_qgm::graph::remap_expr(e, &quant_map);
    let outputs: Vec<OutputCol> = src
        .outputs
        .iter()
        .map(|oc| OutputCol {
            name: oc.name.clone(),
            expr: remap(&oc.expr),
        })
        .collect();
    let kind = match &src.kind {
        BoxKind::Select(s) => BoxKind::Select(SelectBox {
            predicates: s.predicates.iter().map(remap).collect(),
        }),
        BoxKind::GroupBy(g) => BoxKind::GroupBy(GroupByBox {
            items: g
                .items
                .iter()
                .map(|c| ColRef {
                    qid: quant_map[&c.qid],
                    ordinal: c.ordinal,
                })
                .collect(),
            sets: g.sets.clone(),
        }),
        _ => unreachable!(),
    };
    let nb = ctx.comp.boxed_mut(new_id);
    nb.outputs = outputs;
    nb.kind = kind;
    Some(new_id)
}
