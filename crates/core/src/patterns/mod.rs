//! The match-function pattern library (Sections 4 and 5).
//!
//! [`match_boxes`] implements the two universal preconditions of Section 3 —
//! the boxes must be of the same type, and at least one subsumee child must
//! match a subsumer child — and dispatches to the per-type patterns.

pub mod groupby;
pub mod select;

use crate::context::{Ctx, MatchEntry, Side};
use sumtab_qgm::{BoxId, BoxKind};

/// Try to match subsumee box `e` (in `side`'s graph) with subsumer box `r`
/// (in the AST graph).
pub fn match_boxes(ctx: &mut Ctx<'_>, side: Side, e: BoxId, r: BoxId) -> Option<MatchEntry> {
    let ekind = kind_tag(ctx, side, e);
    let rkind = match &ctx.a.boxed(r).kind {
        BoxKind::BaseTable { table } => Tag::Base(table.clone()),
        BoxKind::Select(_) => Tag::Select,
        BoxKind::GroupBy(_) => Tag::GroupBy,
        BoxKind::SubsumerRef { .. } => return None,
    };
    match (ekind, rkind) {
        (Tag::Base(te), Tag::Base(tr)) if te == tr => {
            let n = ctx.egraph(side).boxed(e).outputs.len();
            Some(MatchEntry::exact((0..n).collect()))
        }
        (Tag::Select, Tag::Select) => select::match_selects(ctx, side, e, r),
        (Tag::GroupBy, Tag::GroupBy) => groupby::match_groupbys(ctx, side, e, r),
        _ => None,
    }
}

enum Tag {
    Base(String),
    Select,
    GroupBy,
}

fn kind_tag(ctx: &Ctx<'_>, side: Side, b: BoxId) -> Tag {
    match &ctx.egraph(side).boxed(b).kind {
        BoxKind::BaseTable { table } => Tag::Base(table.clone()),
        BoxKind::Select(_) => Tag::Select,
        BoxKind::GroupBy(_) => Tag::GroupBy,
        BoxKind::SubsumerRef { .. } => Tag::Select, // never matched directly
    }
}

/// Look up (or synthesize) the match entry for a child pair.
///
/// For query-graph subsumees this is a match-table lookup. For comp-graph
/// subsumees (the recursive invocation of Section 4.2.2) the entry is
/// synthesized from the fragment's structure: a `SubsumerRef` leaf targeting
/// the subsumer child is an exact identity match, and a compensation SELECT
/// over that leaf is its own fragment.
pub fn child_entry(ctx: &Ctx<'_>, side: Side, ce: BoxId, cr: BoxId) -> Option<MatchEntry> {
    match side {
        Side::Query => ctx.table.get(&(ce, cr)).cloned(),
        Side::Comp => {
            let bx = ctx.comp.boxed(ce);
            match &bx.kind {
                BoxKind::SubsumerRef { target, .. } if *target == cr => {
                    Some(MatchEntry::exact((0..bx.outputs.len()).collect()))
                }
                BoxKind::Select(_) if ctx.reaches_subsumer(ce) => {
                    subsumer_target(ctx, ce).filter(|&t| t == cr)?;
                    Some(MatchEntry::with_comp(ce))
                }
                _ => None,
            }
        }
    }
}

/// The subsumer box a compensation fragment ultimately references.
pub fn subsumer_target(ctx: &Ctx<'_>, b: BoxId) -> Option<BoxId> {
    match &ctx.comp.boxed(b).kind {
        BoxKind::SubsumerRef { target, .. } => Some(*target),
        _ => ctx
            .comp
            .boxed(b)
            .quants
            .iter()
            .find_map(|&q| subsumer_target(ctx, ctx.comp.input_of(q))),
    }
}

/// True when the comp-graph fragment rooted at `b` contains a GROUP BY box
/// on its subsumer path.
pub fn fragment_has_group_by(ctx: &Ctx<'_>, b: BoxId) -> bool {
    let bx = ctx.comp.boxed(b);
    if matches!(bx.kind, BoxKind::SubsumerRef { .. }) {
        return false;
    }
    let on_path = ctx.reaches_subsumer(b);
    if !on_path {
        return false;
    }
    if bx.is_group_by() {
        return true;
    }
    bx.quants
        .iter()
        .any(|&q| fragment_has_group_by(ctx, ctx.comp.input_of(q)))
}
