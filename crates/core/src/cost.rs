//! Cardinality-based plan costing and rewrite routing.
//!
//! The paper's §7 multi-AST routing assumes the optimizer *chooses* among
//! candidate rewrites; blindly preferring any matching AST can pick a
//! losing plan — an AST nearly as large as the base data (Figure 5's AST2)
//! pays the compensation overhead without saving meaningful scan work.
//! This module supplies the missing choice: a deterministic cardinality
//! cost model over QGM graphs, parameterized only by stored-table row
//! counts, plus a routing policy that decides base plan vs. rewrite.
//!
//! The model is intentionally coarse — its job is *routing*, not absolute
//! time prediction. Estimated cost is "rows processed": every stored-table
//! leaf contributes its row count (the scan), and every operator box
//! contributes the estimated cardinality of its inputs (the per-row work).
//! Cardinalities propagate bottom-up with two fixed heuristics:
//!
//! * a single-quantifier predicate (a *filter*, as opposed to a join
//!   predicate) keeps [`DEFAULT_FILTER_SELECTIVITY`] of its input;
//! * grouping compresses to [`DEFAULT_GROUP_COMPRESSION`] of its input.
//!
//! Joins are assumed key–foreign-key (the paper's star schema): a select
//! box's output cardinality is the *largest* input, not the product.
//!
//! Routing applies a [`RoutePolicy`]: a rewrite must beat the base plan by
//! [`RoutePolicy::rewrite_penalty`] — compensation work per AST row (wider
//! rows, derived expressions, rejoins) is costlier than base per-row work,
//! so a rewrite that merely ties on scanned rows loses in practice. Below
//! [`RoutePolicy::min_cost_gate`] estimated rows, the choice cannot matter
//! (µs-scale either way) and the paper's default — prefer the rewrite —
//! stands. Estimates this coarse are sometimes wrong, which is why the
//! session layers a runtime feedback loop on top (observed latencies
//! override estimates; see `sumtab::SummarySession`).

use std::collections::HashMap;

use sumtab_qgm::{BoxId, BoxKind, QgmGraph, ScalarExpr};

/// Fraction of input rows a single-table filter predicate keeps.
pub const DEFAULT_FILTER_SELECTIVITY: f64 = 0.33;

/// Fraction of input rows surviving grouping (distinct-group estimate).
pub const DEFAULT_GROUP_COMPRESSION: f64 = 0.25;

/// The estimated cost of executing one QGM plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Rows read from stored tables (base tables and AST backing tables).
    pub scanned: f64,
    /// Total rows processed: scans plus every operator's estimated input.
    /// This is the figure routing compares.
    pub total: f64,
}

/// How the router trades a rewrite's estimated cost against the base plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutePolicy {
    /// Multiplier on the rewrite's estimated cost before comparison: the
    /// rewrite is chosen only when `rewrite.total * rewrite_penalty <=
    /// base.total`, i.e. it must at least halve (at the default `2.0`) the
    /// estimated work to be worth the per-row compensation overhead.
    pub rewrite_penalty: f64,
    /// Base-plan cost (in estimated rows) below which routing always takes
    /// the rewrite: at that scale the choice cannot matter, and preferring
    /// the summary table is the paper's default behaviour.
    pub min_cost_gate: f64,
}

impl Default for RoutePolicy {
    fn default() -> RoutePolicy {
        RoutePolicy {
            rewrite_penalty: 2.0,
            min_cost_gate: 1024.0,
        }
    }
}

/// Does the router pick `rewrite` over `base` under `policy`?
pub fn rewrite_wins(base: &PlanCost, rewrite: &PlanCost, policy: &RoutePolicy) -> bool {
    if base.total <= policy.min_cost_gate {
        return true;
    }
    rewrite.total * policy.rewrite_penalty <= base.total
}

/// True when the predicate references at most one quantifier — a local
/// filter whose selectivity shrinks the output, as opposed to a join
/// predicate (two quantifiers), which the FK-join cardinality rule (max of
/// inputs) already accounts for.
fn is_local_filter(pred: &ScalarExpr) -> bool {
    let mut quants = Vec::new();
    pred.walk(&mut |e| {
        if let ScalarExpr::Col(c) = e {
            if !quants.contains(&c.qid) {
                quants.push(c.qid);
            }
        }
        true
    });
    quants.len() <= 1
}

/// Estimate the cost of executing `g`, with stored-table cardinalities
/// supplied by `row_count` (typically `Database::row_count`; an unknown
/// table estimates as a single row).
pub fn estimate(g: &QgmGraph, row_count: &dyn Fn(&str) -> usize) -> PlanCost {
    let mut card: HashMap<BoxId, f64> = HashMap::new();
    let mut cost = PlanCost {
        scanned: 0.0,
        total: 0.0,
    };
    for b in g.topo_order() {
        let bx = g.boxed(b);
        let inputs: Vec<f64> = bx
            .quants
            .iter()
            .map(|&q| card.get(&g.input_of(q)).copied().unwrap_or(1.0))
            .collect();
        let out = match &bx.kind {
            BoxKind::BaseTable { table } => {
                let n = row_count(table).max(1) as f64;
                cost.scanned += n;
                cost.total += n;
                n
            }
            BoxKind::Select(sel) => {
                cost.total += inputs.iter().sum::<f64>();
                let widest = inputs.iter().copied().fold(1.0f64, f64::max);
                let filters = sel.predicates.iter().filter(|p| is_local_filter(p)).count();
                (widest * DEFAULT_FILTER_SELECTIVITY.powi(filters as i32)).max(1.0)
            }
            BoxKind::GroupBy(_) => {
                let input = inputs.iter().sum::<f64>();
                cost.total += input;
                (input * DEFAULT_GROUP_COMPRESSION).max(1.0)
            }
            // Matcher-internal leaf; never in an executable plan. A unit
            // estimate keeps the model total (permissive like pass 1).
            BoxKind::SubsumerRef { .. } => 1.0,
        };
        card.insert(b, out);
    }
    cost
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use sumtab_catalog::Catalog;
    use sumtab_parser::parse_query;
    use sumtab_qgm::build_query;

    fn graph(sql: &str) -> QgmGraph {
        let catalog = Catalog::credit_card_sample();
        build_query(&parse_query(sql).unwrap(), &catalog).unwrap()
    }

    fn rows(counts: &'static [(&'static str, usize)]) -> impl Fn(&str) -> usize {
        move |t: &str| {
            counts
                .iter()
                .find(|(n, _)| t.eq_ignore_ascii_case(n))
                .map(|(_, c)| *c)
                .unwrap_or(0)
        }
    }

    #[test]
    fn scan_cost_tracks_row_counts() {
        let g = graph("select tid from trans");
        let cheap = estimate(&g, &rows(&[("trans", 100)]));
        let dear = estimate(&g, &rows(&[("trans", 100_000)]));
        assert!(dear.total > cheap.total * 500.0, "{dear:?} vs {cheap:?}");
        assert_eq!(cheap.scanned, 100.0);
        assert_eq!(dear.scanned, 100_000.0);
    }

    #[test]
    fn filters_shrink_cardinality_joins_take_max() {
        // One local filter (price > 100) and one join predicate: the join
        // must not multiply cardinalities, the filter must shrink them.
        let g = graph(
            "select country, sum(qty) as q from trans, loc \
             where flid = lid and price > 100 group by country",
        );
        let c = estimate(&g, &rows(&[("trans", 10_000), ("loc", 50)]));
        assert_eq!(c.scanned, 10_050.0);
        // Work: scans + select input (10_050) + group-by input
        // (10_000 * 0.33 filtered join output).
        assert!(c.total > 20_000.0 && c.total < 30_000.0, "{c:?}");
    }

    #[test]
    fn routing_prefers_rewrites_only_when_they_halve_the_work() {
        let policy = RoutePolicy::default();
        let base = PlanCost {
            scanned: 100_000.0,
            total: 200_000.0,
        };
        let winning = PlanCost {
            scanned: 4_000.0,
            total: 8_000.0,
        };
        let losing = PlanCost {
            scanned: 72_000.0,
            total: 144_000.0,
        };
        assert!(rewrite_wins(&base, &winning, &policy));
        assert!(
            !rewrite_wins(&base, &losing, &policy),
            "an AST nearly as large as the base data must be rejected"
        );
    }

    #[test]
    fn tiny_plans_keep_the_paper_default() {
        let policy = RoutePolicy::default();
        let base = PlanCost {
            scanned: 10.0,
            total: 30.0,
        };
        let rewrite = PlanCost {
            scanned: 9.0,
            total: 29.0,
        };
        assert!(
            rewrite_wins(&base, &rewrite, &policy),
            "below the gate the rewrite is always taken"
        );
    }
}
