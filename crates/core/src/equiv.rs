//! Column equivalence classes and equivalence-aware expression comparison.
//!
//! Join predicates like `faid = aid` make two columns interchangeable within
//! the scope that applies the predicate (Section 4.1.1's example derives the
//! query's `aid` from the AST's `faid`). We track such equivalences with a
//! union-find over [`ColRef`]s and compare expressions structurally, treating
//! class members as equal and retrying operand order for commutative
//! operators.

use std::collections::HashMap;
use sumtab_catalog::{Catalog, Value};
use sumtab_qgm::{BinOp, BoxId, BoxKind, ColRef, QgmGraph, ScalarExpr};

/// Union-find over column references.
#[derive(Debug, Clone, Default)]
pub struct ColEquiv {
    parent: HashMap<ColRef, ColRef>,
}

impl ColEquiv {
    /// An empty relation (every column its own class).
    pub fn new() -> ColEquiv {
        ColEquiv::default()
    }

    /// Class representative of `c`.
    pub fn find(&self, c: ColRef) -> ColRef {
        let mut cur = c;
        while let Some(&p) = self.parent.get(&cur) {
            if p == cur {
                break;
            }
            cur = p;
        }
        cur
    }

    /// Merge the classes of `a` and `b`.
    pub fn union(&mut self, a: ColRef, b: ColRef) {
        self.parent.entry(a).or_insert(a);
        self.parent.entry(b).or_insert(b);
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    /// Are `a` and `b` known-equal?
    pub fn same(&self, a: ColRef, b: ColRef) -> bool {
        a == b || self.find(a) == self.find(b)
    }

    /// All members recorded as equivalent to `c` (including `c`).
    pub fn members(&self, c: ColRef) -> Vec<ColRef> {
        let root = self.find(c);
        let mut out: Vec<ColRef> = self
            .parent
            .keys()
            .copied()
            .filter(|&k| self.find(k) == root)
            .collect();
        if !out.contains(&c) {
            out.push(c);
        }
        out
    }

    /// Record equivalences from a predicate conjunct: `Col = Col` merges the
    /// two classes.
    pub fn absorb_predicate(&mut self, p: &ScalarExpr) {
        if let ScalarExpr::Bin(BinOp::Eq, l, r) = p {
            if let (ScalarExpr::Col(a), ScalarExpr::Col(b)) = (&**l, &**r) {
                self.union(*a, *b);
            }
        }
    }
}

/// Equivalence-aware structural equality. Both expressions must be in the
/// same (mixed) column space and normalized.
pub fn equiv_eq(a: &ScalarExpr, b: &ScalarExpr, eq: &ColEquiv) -> bool {
    use ScalarExpr as E;
    match (a, b) {
        (E::Col(x), E::Col(y)) => eq.same(*x, *y),
        (E::Lit(x), E::Lit(y)) => lit_eq(x, y),
        (E::BaseCol(x), E::BaseCol(y)) => x == y,
        (E::Bin(op1, l1, r1), E::Bin(op2, l2, r2)) => {
            if op1 != op2 {
                return false;
            }
            if equiv_eq(l1, l2, eq) && equiv_eq(r1, r2, eq) {
                return true;
            }
            // Commutative retry.
            matches!(
                op1,
                BinOp::Add | BinOp::Mul | BinOp::Eq | BinOp::NotEq | BinOp::And | BinOp::Or
            ) && equiv_eq(l1, r2, eq)
                && equiv_eq(r1, l2, eq)
        }
        (E::Un(op1, x1), E::Un(op2, x2)) => op1 == op2 && equiv_eq(x1, x2, eq),
        (E::Func(f1, a1), E::Func(f2, a2)) => {
            f1 == f2 && a1.len() == a2.len() && a1.iter().zip(a2).all(|(x, y)| equiv_eq(x, y, eq))
        }
        (
            E::Case {
                operand: o1,
                arms: ar1,
                else_expr: e1,
            },
            E::Case {
                operand: o2,
                arms: ar2,
                else_expr: e2,
            },
        ) => {
            opt_eq(o1.as_deref(), o2.as_deref(), eq)
                && ar1.len() == ar2.len()
                && ar1
                    .iter()
                    .zip(ar2)
                    .all(|((w1, t1), (w2, t2))| equiv_eq(w1, w2, eq) && equiv_eq(t1, t2, eq))
                && opt_eq(e1.as_deref(), e2.as_deref(), eq)
        }
        (
            E::IsNull {
                expr: x1,
                negated: n1,
            },
            E::IsNull {
                expr: x2,
                negated: n2,
            },
        ) => n1 == n2 && equiv_eq(x1, x2, eq),
        (
            E::Like {
                expr: x1,
                pattern: p1,
                negated: n1,
            },
            E::Like {
                expr: x2,
                pattern: p2,
                negated: n2,
            },
        ) => n1 == n2 && p1 == p2 && equiv_eq(x1, x2, eq),
        (
            E::GeneralAgg {
                func: f1,
                arg: a1,
                distinct: d1,
            },
            E::GeneralAgg {
                func: f2,
                arg: a2,
                distinct: d2,
            },
        ) => f1 == f2 && d1 == d2 && opt_eq(a1.as_deref(), a2.as_deref(), eq),
        (E::Agg(x), E::Agg(y)) => {
            x.func == y.func
                && x.distinct == y.distinct
                && match (x.arg, y.arg) {
                    (None, None) => true,
                    (Some(c1), Some(c2)) => eq.same(c1, c2),
                    _ => false,
                }
        }
        _ => false,
    }
}

fn opt_eq(a: Option<&ScalarExpr>, b: Option<&ScalarExpr>, eq: &ColEquiv) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => equiv_eq(x, y, eq),
        _ => false,
    }
}

/// Literal equality for matching (numerics compare by value).
fn lit_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Double(y)) | (Value::Double(y), Value::Int(x)) => *x as f64 == *y,
        _ => a == b,
    }
}

/// Does predicate `weaker` subsume `stronger`? (Every row eliminated by
/// `weaker` is also eliminated by `stronger` — footnote 4: `x > 10` subsumes
/// `x > 20`.) Equality of the two predicates also counts.
pub fn subsumes(weaker: &ScalarExpr, stronger: &ScalarExpr, eq: &ColEquiv) -> bool {
    if equiv_eq(weaker, stronger, eq) {
        return true;
    }
    // Range forms: `e OP lit` with the same e on both sides.
    let (we, wop, wl) = match comparison_with_literal(weaker) {
        Some(t) => t,
        None => return false,
    };
    let (se, sop, sl) = match comparison_with_literal(stronger) {
        Some(t) => t,
        None => return false,
    };
    if !equiv_eq(we, se, eq) {
        return false;
    }
    let (wv, sv) = match (wl.as_f64_like(), sl.as_f64_like()) {
        (Some(a), Some(b)) => (a, b),
        _ => return false,
    };
    match (wop, sop) {
        (BinOp::Gt, BinOp::Gt) | (BinOp::GtEq, BinOp::GtEq) => wv <= sv,
        (BinOp::Gt, BinOp::GtEq) => wv < sv,
        (BinOp::GtEq, BinOp::Gt) => wv <= sv,
        (BinOp::Lt, BinOp::Lt) | (BinOp::LtEq, BinOp::LtEq) => wv >= sv,
        (BinOp::Lt, BinOp::LtEq) => wv > sv,
        (BinOp::LtEq, BinOp::Lt) => wv >= sv,
        (BinOp::Gt, BinOp::Eq) => sv > wv,
        (BinOp::GtEq, BinOp::Eq) => sv >= wv,
        (BinOp::Lt, BinOp::Eq) => sv < wv,
        (BinOp::LtEq, BinOp::Eq) => sv <= wv,
        _ => false,
    }
}

/// Numeric view used by the subsumption test (dates order by day number).
trait F64Like {
    fn as_f64_like(&self) -> Option<f64>;
}

impl F64Like for Value {
    fn as_f64_like(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            Value::Date(d) => Some(d.to_day_number() as f64),
            _ => None,
        }
    }
}

/// Decompose `expr OP literal` (either orientation, normalized to expr-first).
fn comparison_with_literal(p: &ScalarExpr) -> Option<(&ScalarExpr, BinOp, &Value)> {
    if let ScalarExpr::Bin(op, l, r) = p {
        if !op.is_comparison() {
            return None;
        }
        if let ScalarExpr::Lit(v) = &**r {
            return Some((l, *op, v));
        }
        if let ScalarExpr::Lit(v) = &**l {
            return Some((r, sumtab_qgm::expr::flip_comparison(*op), v));
        }
    }
    None
}

/// Compute, for each AST box, an equivalence-class id per output ordinal:
/// outputs with the same class id provably carry equal values in every row
/// (they are equal expressions modulo the box's own equality predicates).
/// This propagates bottom-up, which is how `faid` and `aid` become
/// interchangeable above a join on `faid = aid`.
pub fn output_classes(g: &QgmGraph, _catalog: &Catalog) -> HashMap<BoxId, Vec<usize>> {
    let mut out: HashMap<BoxId, Vec<usize>> = HashMap::new();
    for b in g.topo_order() {
        let bx = g.boxed(b);
        let classes = match &bx.kind {
            BoxKind::BaseTable { .. } | BoxKind::SubsumerRef { .. } => {
                (0..bx.outputs.len()).collect::<Vec<_>>()
            }
            BoxKind::Select(sel) => {
                // Key each column reference by (quantifier, child class);
                // union keys linked by equality predicates; outputs sharing a
                // normalized keyed expression share a class.
                let mut uf: StringUf = StringUf::default();
                let key_of_col = |c: ColRef| -> String {
                    let child = g.input_of(c.qid);
                    let cls = out
                        .get(&child)
                        .and_then(|v| v.get(c.ordinal))
                        .copied()
                        .unwrap_or(c.ordinal);
                    format!("q{}c{}", c.qid.idx, cls)
                };
                let key_of_expr = |e: &ScalarExpr| -> String {
                    // Embed the column key as a (prefix-marked) string
                    // literal so the whole expression can be keyed by its
                    // normalized debug form.
                    let mapped = e.map_cols(&mut |c| {
                        ScalarExpr::Lit(Value::Str(format!("\u{1}{}", key_of_col(c))))
                    });
                    format!("{:?}", mapped.normalize())
                };
                for p in &sel.predicates {
                    if let ScalarExpr::Bin(BinOp::Eq, l, r) = p {
                        uf.union(key_of_expr(l), key_of_expr(r));
                    }
                }
                let keys: Vec<String> = bx
                    .outputs
                    .iter()
                    .map(|oc| uf.find(key_of_expr(&oc.expr)))
                    .collect();
                intern(&keys)
            }
            BoxKind::GroupBy(_gb) => {
                let child = g.input_of(bx.quants[0]);
                let child_classes = out.get(&child).cloned().unwrap_or_default();
                let keys: Vec<String> = bx
                    .outputs
                    .iter()
                    .map(|oc| match &oc.expr {
                        ScalarExpr::Col(c) => format!(
                            "g{}",
                            child_classes.get(c.ordinal).copied().unwrap_or(c.ordinal)
                        ),
                        ScalarExpr::Agg(a) => {
                            let argc = a.arg.map(|c| {
                                child_classes.get(c.ordinal).copied().unwrap_or(c.ordinal)
                            });
                            format!("a{:?}{:?}{}", a.func, argc, a.distinct)
                        }
                        other => format!("{other:?}"),
                    })
                    .collect();
                intern(&keys)
            }
        };
        out.insert(b, classes);
    }
    out
}

/// Map equal strings to equal small ints.
fn intern(keys: &[String]) -> Vec<usize> {
    let mut ids: HashMap<&str, usize> = HashMap::new();
    keys.iter()
        .map(|k| {
            let n = ids.len();
            *ids.entry(k.as_str()).or_insert(n)
        })
        .collect()
}

/// A tiny string-keyed union-find for within-box output classes.
#[derive(Default)]
struct StringUf {
    parent: HashMap<String, String>,
}

impl StringUf {
    fn find(&self, k: String) -> String {
        let mut cur = k;
        while let Some(p) = self.parent.get(&cur) {
            if *p == cur {
                break;
            }
            cur = p.clone();
        }
        cur
    }

    fn union(&mut self, a: String, b: String) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use sumtab_catalog::Catalog;
    use sumtab_parser::parse_query;
    use sumtab_qgm::{build_query, GraphId, QuantId};

    fn cr(idx: u32, ord: usize) -> ColRef {
        ColRef {
            qid: QuantId {
                graph: GraphId(42),
                idx,
            },
            ordinal: ord,
        }
    }

    #[test]
    fn union_find_basics() {
        let mut eq = ColEquiv::new();
        assert!(!eq.same(cr(0, 0), cr(1, 0)));
        eq.union(cr(0, 0), cr(1, 0));
        eq.union(cr(1, 0), cr(2, 5));
        assert!(eq.same(cr(0, 0), cr(2, 5)));
        assert!(eq.members(cr(0, 0)).len() >= 3);
    }

    #[test]
    fn equiv_eq_uses_classes_and_commutativity() {
        let mut eq = ColEquiv::new();
        eq.union(cr(0, 0), cr(1, 1));
        let a = ScalarExpr::bin(
            BinOp::Mul,
            ScalarExpr::Col(cr(0, 0)),
            ScalarExpr::Col(cr(2, 2)),
        );
        let b = ScalarExpr::bin(
            BinOp::Mul,
            ScalarExpr::Col(cr(2, 2)),
            ScalarExpr::Col(cr(1, 1)),
        );
        assert!(equiv_eq(&a, &b, &eq));
        let c = ScalarExpr::bin(
            BinOp::Sub,
            ScalarExpr::Col(cr(0, 0)),
            ScalarExpr::Col(cr(2, 2)),
        );
        let d = ScalarExpr::bin(
            BinOp::Sub,
            ScalarExpr::Col(cr(2, 2)),
            ScalarExpr::Col(cr(0, 0)),
        );
        assert!(!equiv_eq(&c, &d, &eq), "subtraction is not commutative");
    }

    #[test]
    fn subsumption_ranges() {
        let eq = ColEquiv::new();
        let x = ScalarExpr::Col(cr(0, 0));
        let gt10 = ScalarExpr::bin(BinOp::Gt, x.clone(), ScalarExpr::Lit(Value::Int(10)));
        let gt20 = ScalarExpr::bin(BinOp::Gt, x.clone(), ScalarExpr::Lit(Value::Int(20)));
        let ge10 = ScalarExpr::bin(BinOp::GtEq, x.clone(), ScalarExpr::Lit(Value::Int(10)));
        let eq15 = ScalarExpr::bin(BinOp::Eq, x.clone(), ScalarExpr::Lit(Value::Int(15)));
        let lt5 = ScalarExpr::bin(BinOp::Lt, x.clone(), ScalarExpr::Lit(Value::Int(5)));
        assert!(subsumes(&gt10, &gt20, &eq));
        assert!(!subsumes(&gt20, &gt10, &eq));
        assert!(subsumes(&gt10, &gt10, &eq), "equality counts");
        assert!(subsumes(&gt10, &eq15, &eq));
        assert!(!subsumes(&gt10, &lt5, &eq));
        assert!(subsumes(&ge10, &gt10, &eq));
    }

    #[test]
    fn output_classes_detect_join_equality() {
        // `faid = aid` makes outputs faid and aid interchangeable.
        let cat = Catalog::credit_card_sample();
        let g = build_query(
            &parse_query("select faid, aid, qty from trans, acct where faid = aid").unwrap(),
            &cat,
        )
        .unwrap();
        let classes = output_classes(&g, &cat);
        let root = &classes[&g.root];
        assert_eq!(root[0], root[1], "faid ≡ aid");
        assert_ne!(root[0], root[2], "qty is distinct");
    }

    #[test]
    fn output_classes_distinguish_self_join_sides() {
        let cat = Catalog::credit_card_sample();
        let g = build_query(
            &parse_query("select t1.qty, t2.qty from trans as t1, trans as t2").unwrap(),
            &cat,
        )
        .unwrap();
        let classes = output_classes(&g, &cat);
        let root = &classes[&g.root];
        assert_ne!(root[0], root[1], "different quantifiers, different rows");
    }
}
