//! Process-global matcher counters.
//!
//! The fast-path work (signature filtering, plan caching) exists to *avoid*
//! running the navigator; these counters make that observable — benches
//! report them and tests assert on deltas (e.g. "a repeated query performs
//! zero match attempts"). Counters are monotone; readers compare
//! before/after snapshots rather than resetting, so concurrent tests in
//! the same process cannot corrupt each other's measurements.

use std::sync::atomic::{AtomicU64, Ordering};

/// Navigator invocations (one per full query-vs-AST match attempt).
static NAVIGATOR_RUNS: AtomicU64 = AtomicU64::new(0);

/// Candidates rejected by the signature filter before the navigator ran.
static FILTER_REJECTIONS: AtomicU64 = AtomicU64::new(0);

/// Record one navigator run. Called by `context::run_navigator`.
pub(crate) fn count_navigator_run() {
    NAVIGATOR_RUNS.fetch_add(1, Ordering::Relaxed);
}

/// Record one signature-filter rejection.
pub(crate) fn count_filter_rejection() {
    FILTER_REJECTIONS.fetch_add(1, Ordering::Relaxed);
}

/// Total navigator runs (match attempts) in this process so far.
pub fn navigator_runs() -> u64 {
    NAVIGATOR_RUNS.load(Ordering::Relaxed)
}

/// Total signature-filter rejections in this process so far.
pub fn filter_rejections() -> u64 {
    FILTER_REJECTIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone() {
        let before = navigator_runs();
        count_navigator_run();
        count_navigator_run();
        assert!(navigator_runs() >= before + 2);
        let fr = filter_rejections();
        count_filter_rejection();
        assert!(filter_rejections() > fr);
    }
}
