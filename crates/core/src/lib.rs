//! # sumtab-matcher
//!
//! The paper's primary contribution: an algorithm that rewrites a SQL query
//! to answer it from one or more *Automatic Summary Tables* (materialized
//! aggregate views), by proving that the query and an AST overlap and
//! compensating for the non-overlapping parts.
//!
//! Architecture (Section 3):
//!
//! * the **navigator** scans the query and AST QGM graphs bottom-up, pairing
//!   candidate (subsumee, subsumer) boxes;
//! * the **match function** tests per-pattern sufficient conditions
//!   (Sections 4.1.1–4.2.4 and 5.1–5.2) and constructs the compensation;
//! * the **translation mechanism** (Section 6) rewrites subsumee expressions
//!   into the subsumer's context and derives them from the subsumer's
//!   output columns.
//!
//! ```
//! use sumtab_catalog::Catalog;
//! use sumtab_matcher::{RegisteredAst, Rewriter};
//! use sumtab_parser::parse_query;
//! use sumtab_qgm::build_query;
//!
//! let catalog = Catalog::credit_card_sample();
//! let ast = RegisteredAst::from_sql(
//!     "ast1",
//!     "select faid, flid, year(date) as year, count(*) as cnt \
//!      from trans group by faid, flid, year(date)",
//!     &catalog,
//! ).unwrap();
//! let q = build_query(&parse_query(
//!     "select faid, count(*) as cnt from trans group by faid",
//! ).unwrap(), &catalog).unwrap();
//! // `rewrite` returns Result<Option<Rewrite>, MatchError>: the Err layer is
//! // a matcher-internal failure; the Option layer is "did it match at all".
//! let rewrite = Rewriter::new(&catalog)
//!     .rewrite(&q, &ast)
//!     .unwrap()
//!     .expect("should match");
//! assert_eq!(rewrite.ast_name, "ast1");
//! ```

pub mod baseline;
pub mod context;
pub mod derive;
pub mod equiv;
pub mod patterns;
pub mod rewrite;
pub mod translate;

use context::run_navigator;
use sumtab_catalog::Catalog;
use sumtab_qgm::{build_query, BoxId, BuildError, QgmGraph};

/// Why an AST definition could not be registered.
#[derive(Debug, Clone, PartialEq)]
pub enum AstDefError {
    /// The definition SQL failed to parse.
    Parse(sumtab_parser::ParseError),
    /// The definition SQL failed semantic analysis / QGM construction.
    Plan(BuildError),
}

impl std::fmt::Display for AstDefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AstDefError::Parse(e) => write!(f, "AST definition does not parse: {e}"),
            AstDefError::Plan(e) => write!(f, "AST definition does not plan: {e}"),
        }
    }
}

impl std::error::Error for AstDefError {}

/// A registered Automatic Summary Table: its backing-table name and its
/// definition as a QGM graph.
#[derive(Debug, Clone)]
pub struct RegisteredAst {
    /// The backing (materialized) table's name.
    pub name: String,
    /// The definition query's QGM graph.
    pub graph: QgmGraph,
}

impl RegisteredAst {
    /// Parse and translate a definition; the backing table is assumed to be
    /// named `name` with columns matching the definition's root outputs.
    pub fn from_sql(
        name: &str,
        sql: &str,
        catalog: &Catalog,
    ) -> Result<RegisteredAst, AstDefError> {
        let q = sumtab_parser::parse_query(sql).map_err(AstDefError::Parse)?;
        let graph = build_query(&q, catalog).map_err(AstDefError::Plan)?;
        Ok(RegisteredAst {
            name: name.to_string(),
            graph,
        })
    }

    /// The backing table's column names (uniquified like the materializer).
    pub fn backing_columns(&self) -> Vec<String> {
        let mut used = std::collections::HashSet::new();
        self.graph
            .boxed(self.graph.root)
            .outputs
            .iter()
            .map(|oc| {
                let mut name = oc.name.clone();
                let mut n = 2;
                while !used.insert(name.clone()) {
                    name = format!("{}_{}", oc.name, n);
                    n += 1;
                }
                name
            })
            .collect()
    }
}

/// A matcher-internal failure: the navigator or rewrite builder produced an
/// inconsistent result (or exceeded a depth bound) while matching against a
/// particular AST. Distinct from "no match", which is `Ok(None)` from
/// [`Rewriter::rewrite`] and is not an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchError {
    /// The AST whose match attempt failed.
    pub ast: String,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for MatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matcher error against AST `{}`: {}", self.ast, self.detail)
    }
}

impl std::error::Error for MatchError {}

/// A successful rewrite.
#[derive(Debug, Clone)]
pub struct Rewrite {
    /// Which AST the query was routed to.
    pub ast_name: String,
    /// The rewritten query graph (reads the AST's backing table).
    pub graph: QgmGraph,
    /// The query box that was replaced.
    pub replaced_box: BoxId,
    /// Whether the match at that box was exact (compensation-free).
    pub exact: bool,
}

/// The rewriting engine.
pub struct Rewriter<'a> {
    catalog: &'a Catalog,
}

impl<'a> Rewriter<'a> {
    /// A rewriter over the given catalog.
    pub fn new(catalog: &'a Catalog) -> Rewriter<'a> {
        Rewriter { catalog }
    }

    /// Try to rewrite `query` to use `ast`.
    ///
    /// * `Ok(Some(_))` — the best rewrite (the one replacing the highest
    ///   matched query box).
    /// * `Ok(None)` — the AST root matches no query box; not an error.
    /// * `Err(_)` — the matcher itself failed (inconsistent match tables, a
    ///   rewritten graph that fails validation, or a depth bound exceeded).
    ///   Callers should treat this as "AST unusable for this query" and fall
    ///   back to the un-rewritten plan rather than aborting.
    pub fn rewrite(
        &self,
        query: &QgmGraph,
        ast: &RegisteredAst,
    ) -> Result<Option<Rewrite>, MatchError> {
        let err = |detail: String| MatchError {
            ast: ast.name.clone(),
            detail,
        };
        let ctx = run_navigator(query, &ast.graph, self.catalog);
        // Prefer the highest (latest in bottom-up order) matched query box:
        // it covers the most query work with the AST.
        let order = query.topo_order();
        let Some((&(eb, _), entry)) = ctx
            .table
            .iter()
            .filter(|((_, rb), _)| *rb == ast.graph.root)
            .max_by_key(|((eb, _), _)| order.iter().position(|b| b == eb))
        else {
            return Ok(None);
        };
        let backing_cols = ast.backing_columns();
        let mut graph =
            rewrite::build_rewrite(&ctx, eb, entry, &ast.name, &backing_cols).map_err(err)?;
        sumtab_qgm::normalize::merge_selects(&mut graph);
        graph
            .check()
            .map_err(|e| err(format!("rewritten graph failed validation: {e}")))?;
        Ok(Some(Rewrite {
            ast_name: ast.name.clone(),
            graph,
            replaced_box: eb,
            exact: entry.exact,
        }))
    }

    /// Rewrite against every AST; returns all successful rewrites.
    ///
    /// Best-effort: an AST whose match attempt errors internally is skipped
    /// (treated like a non-match) so one bad AST cannot sink the others. Use
    /// [`Rewriter::rewrite`] per AST to observe the errors.
    pub fn rewrite_all(&self, query: &QgmGraph, asts: &[RegisteredAst]) -> Vec<Rewrite> {
        asts.iter()
            .filter_map(|ast| self.rewrite(query, ast).ok().flatten())
            .collect()
    }

    /// Among all matching ASTs, pick the one whose backing table has the
    /// fewest rows (related problem (b): deciding whether/which AST to use).
    /// Best-effort over errored ASTs, like [`Rewriter::rewrite_all`].
    pub fn rewrite_best(
        &self,
        query: &QgmGraph,
        asts: &[RegisteredAst],
        row_count: impl Fn(&str) -> usize,
    ) -> Option<Rewrite> {
        self.rewrite_all(query, asts)
            .into_iter()
            .min_by_key(|r| row_count(&r.ast_name))
    }

    /// Diagnostic: the number of (query box, AST box) pairs that matched.
    pub fn match_count(&self, query: &QgmGraph, ast: &RegisteredAst) -> usize {
        run_navigator(query, &ast.graph, self.catalog).table.len()
    }
}
