//! # sumtab-matcher
//!
//! The paper's primary contribution: an algorithm that rewrites a SQL query
//! to answer it from one or more *Automatic Summary Tables* (materialized
//! aggregate views), by proving that the query and an AST overlap and
//! compensating for the non-overlapping parts.
//!
//! Architecture (Section 3):
//!
//! * the **navigator** scans the query and AST QGM graphs bottom-up, pairing
//!   candidate (subsumee, subsumer) boxes;
//! * the **match function** tests per-pattern sufficient conditions
//!   (Sections 4.1.1–4.2.4 and 5.1–5.2) and constructs the compensation;
//! * the **translation mechanism** (Section 6) rewrites subsumee expressions
//!   into the subsumer's context and derives them from the subsumer's
//!   output columns.
//!
//! ```
//! use sumtab_catalog::Catalog;
//! use sumtab_matcher::{RegisteredAst, Rewriter};
//! use sumtab_parser::parse_query;
//! use sumtab_qgm::build_query;
//!
//! let catalog = Catalog::credit_card_sample();
//! let ast = RegisteredAst::from_sql(
//!     "ast1",
//!     "select faid, flid, year(date) as year, count(*) as cnt \
//!      from trans group by faid, flid, year(date)",
//!     &catalog,
//! ).unwrap();
//! let q = build_query(&parse_query(
//!     "select faid, count(*) as cnt from trans group by faid",
//! ).unwrap(), &catalog).unwrap();
//! // `rewrite` returns Result<Option<Rewrite>, MatchError>: the Err layer is
//! // a matcher-internal failure; the Option layer is "did it match at all".
//! let rewrite = Rewriter::new(&catalog)
//!     .rewrite(&q, &ast)
//!     .unwrap()
//!     .expect("should match");
//! assert_eq!(rewrite.ast_name, "ast1");
//! ```

#![forbid(unsafe_code)]

pub mod baseline;
pub mod context;
pub mod cost;
pub mod derive;
pub mod equiv;
pub mod patterns;
pub mod rewrite;
pub mod signature;
pub mod stats;
pub mod translate;

use context::run_navigator;
use sumtab_catalog::{Catalog, MatchSignature};
use sumtab_qgm::{build_query, BoxId, BuildError, QgmGraph};

/// Why an AST definition could not be registered.
#[derive(Debug, Clone, PartialEq)]
pub enum AstDefError {
    /// The definition SQL failed to parse.
    Parse(sumtab_parser::ParseError),
    /// The definition SQL failed semantic analysis / QGM construction.
    Plan(BuildError),
}

impl std::fmt::Display for AstDefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AstDefError::Parse(e) => write!(f, "AST definition does not parse: {e}"),
            AstDefError::Plan(e) => write!(f, "AST definition does not plan: {e}"),
        }
    }
}

impl std::error::Error for AstDefError {}

/// A registered Automatic Summary Table: its backing-table name, its
/// definition as a QGM graph, and its match signature (computed once, at
/// registration, so per-query filtering touches no graph structure).
#[derive(Debug, Clone)]
pub struct RegisteredAst {
    /// The backing (materialized) table's name.
    pub name: String,
    /// The definition query's QGM graph.
    pub graph: QgmGraph,
    /// The definition's match signature, for pre-navigator filtering.
    pub signature: MatchSignature,
}

impl RegisteredAst {
    /// Register a definition graph under `name`, computing its signature.
    pub fn new(name: &str, graph: QgmGraph) -> RegisteredAst {
        let signature = signature::graph_signature(&graph);
        RegisteredAst {
            name: name.to_string(),
            graph,
            signature,
        }
    }

    /// Parse and translate a definition; the backing table is assumed to be
    /// named `name` with columns matching the definition's root outputs.
    pub fn from_sql(
        name: &str,
        sql: &str,
        catalog: &Catalog,
    ) -> Result<RegisteredAst, AstDefError> {
        let q = sumtab_parser::parse_query(sql).map_err(AstDefError::Parse)?;
        let graph = build_query(&q, catalog).map_err(AstDefError::Plan)?;
        Ok(RegisteredAst::new(name, graph))
    }

    /// The backing table's column names (uniquified like the materializer).
    pub fn backing_columns(&self) -> Vec<String> {
        let mut used = std::collections::HashSet::new();
        self.graph
            .boxed(self.graph.root)
            .outputs
            .iter()
            .map(|oc| {
                let mut name = oc.name.clone();
                let mut n = 2;
                while !used.insert(name.clone()) {
                    name = format!("{}_{}", oc.name, n);
                    n += 1;
                }
                name
            })
            .collect()
    }
}

/// A matcher-internal failure: the navigator or rewrite builder produced an
/// inconsistent result (or exceeded a depth bound) while matching against a
/// particular AST. Distinct from "no match", which is `Ok(None)` from
/// [`Rewriter::rewrite`] and is not an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchError {
    /// The AST whose match attempt failed.
    pub ast: String,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for MatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matcher error against AST `{}`: {}",
            self.ast, self.detail
        )
    }
}

impl std::error::Error for MatchError {}

/// A successful rewrite.
#[derive(Debug, Clone)]
pub struct Rewrite {
    /// Which AST the query was routed to.
    pub ast_name: String,
    /// The rewritten query graph (reads the AST's backing table).
    pub graph: QgmGraph,
    /// The query box that was replaced.
    pub replaced_box: BoxId,
    /// Whether the match at that box was exact (compensation-free).
    pub exact: bool,
}

/// The outcome of one candidate AST in a [`Rewriter::rewrite_candidates`]
/// sweep, in input order.
#[derive(Debug, Clone)]
pub enum CandidateOutcome {
    /// Rejected by the signature filter: a match is provably impossible,
    /// so the navigator never ran.
    Filtered,
    /// Survived the filter, but the navigator found no match.
    NoMatch,
    /// A successful rewrite.
    Match(Box<Rewrite>),
    /// The matcher itself failed on this candidate.
    Error(MatchError),
}

/// The rewriting engine.
///
/// Candidate sweeps ([`Rewriter::rewrite_candidates`],
/// [`Rewriter::rewrite_all`], [`Rewriter::rewrite_best`]) run a two-phase
/// fast path: a sound per-AST signature filter (see [`signature`]) prunes
/// provably unmatchable candidates, then the survivors fan out across a
/// `std::thread::scope` pool. Results are always reported in input order,
/// so every sweep is deterministic regardless of pool size.
pub struct Rewriter<'a> {
    catalog: &'a Catalog,
    pool_size: usize,
}

/// Default worker count for candidate sweeps: the machine's available
/// parallelism, capped — matching is µs-scale per candidate, so a huge pool
/// only adds spawn overhead.
fn default_pool_size() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

impl<'a> Rewriter<'a> {
    /// A rewriter over the given catalog, with the default match pool.
    pub fn new(catalog: &'a Catalog) -> Rewriter<'a> {
        Rewriter {
            catalog,
            pool_size: default_pool_size(),
        }
    }

    /// A rewriter with an explicit candidate-matching pool size. `1` (or
    /// `0`) forces serial sweeps; results are identical for every size.
    pub fn with_pool_size(catalog: &'a Catalog, pool_size: usize) -> Rewriter<'a> {
        Rewriter {
            catalog,
            pool_size: pool_size.max(1),
        }
    }

    /// Try to rewrite `query` to use `ast`.
    ///
    /// * `Ok(Some(_))` — the best rewrite (the one replacing the highest
    ///   matched query box).
    /// * `Ok(None)` — the AST root matches no query box; not an error.
    /// * `Err(_)` — the matcher itself failed (inconsistent match tables, a
    ///   rewritten graph that fails validation, or a depth bound exceeded).
    ///   Callers should treat this as "AST unusable for this query" and fall
    ///   back to the un-rewritten plan rather than aborting.
    pub fn rewrite(
        &self,
        query: &QgmGraph,
        ast: &RegisteredAst,
    ) -> Result<Option<Rewrite>, MatchError> {
        let err = |detail: String| MatchError {
            ast: ast.name.clone(),
            detail,
        };
        let ctx = run_navigator(query, &ast.graph, self.catalog);
        // Prefer the highest (latest in bottom-up order) matched query box:
        // it covers the most query work with the AST.
        let order = query.topo_order();
        let Some((&(eb, _), entry)) = ctx
            .table
            .iter()
            .filter(|((_, rb), _)| *rb == ast.graph.root)
            .max_by_key(|((eb, _), _)| order.iter().position(|b| b == eb))
        else {
            return Ok(None);
        };
        let backing_cols = ast.backing_columns();
        let mut graph =
            rewrite::build_rewrite(&ctx, eb, entry, &ast.name, &backing_cols).map_err(err)?;
        sumtab_qgm::normalize::merge_selects(&mut graph);
        // Rewrite boundary gate. Strict structure is always enforced (a
        // structurally broken rewrite was always an error here); the typing
        // pass and the schema-preservation/AST-projection proofs (pass 3)
        // run under the verification gates. Every failure surfaces as a
        // `MatchError`, so candidate sweeps degrade to the un-rewritten
        // plan instead of aborting the query.
        sumtab_qgm::verify::verify_plan_structure(&graph)
            .map_err(|e| err(format!("rewritten graph failed validation: {e}")))?;
        if sumtab_qgm::verify::runtime_checks_enabled() {
            sumtab_qgm::verify::verify_types(&graph, self.catalog)
                .map_err(|e| err(e.to_string()))?;
            sumtab_qgm::verify::verify_schema_preservation(query, &graph, self.catalog)
                .map_err(|e| err(e.to_string()))?;
            sumtab_qgm::verify::verify_backing_projection(&graph, &ast.name, &backing_cols)
                .map_err(|e| err(e.to_string()))?;
        }
        Ok(Some(Rewrite {
            ast_name: ast.name.clone(),
            graph,
            replaced_box: eb,
            exact: entry.exact,
        }))
    }

    /// One candidate attempt, as an outcome value.
    fn attempt(&self, query: &QgmGraph, ast: &RegisteredAst) -> CandidateOutcome {
        match self.rewrite(query, ast) {
            Ok(Some(rw)) => CandidateOutcome::Match(Box::new(rw)),
            Ok(None) => CandidateOutcome::NoMatch,
            Err(e) => CandidateOutcome::Error(e),
        }
    }

    /// Sweep every candidate AST through the fast path: signature-filter
    /// first, then match the survivors on the thread pool. The returned
    /// vector has exactly one [`CandidateOutcome`] per input, in input
    /// order — deterministic for every pool size.
    pub fn rewrite_candidates(
        &self,
        query: &QgmGraph,
        asts: &[&RegisteredAst],
    ) -> Vec<CandidateOutcome> {
        let qsig = signature::graph_signature(query);
        let mut out: Vec<CandidateOutcome> = Vec::with_capacity(asts.len());
        let mut survivors: Vec<usize> = Vec::new();
        for (i, ast) in asts.iter().enumerate() {
            if signature::survives(&qsig, &ast.signature, self.catalog) {
                survivors.push(i);
            } else {
                stats::count_filter_rejection();
            }
            out.push(CandidateOutcome::Filtered);
        }
        let workers = self.pool_size.min(survivors.len());
        if workers <= 1 {
            for &i in &survivors {
                out[i] = self.attempt(query, asts[i]);
            }
            return out;
        }
        // Static partition: each worker owns a contiguous chunk of the
        // survivor list and writes into its own slice of the slot vector,
        // so no locking is needed and slot order fixes result order.
        let mut slots: Vec<Option<CandidateOutcome>> = vec![None; survivors.len()];
        let chunk = survivors.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (idx_chunk, slot_chunk) in survivors.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (&i, slot) in idx_chunk.iter().zip(slot_chunk.iter_mut()) {
                        *slot = Some(self.attempt(query, asts[i]));
                    }
                });
            }
        });
        for (&i, slot) in survivors.iter().zip(slots) {
            // Every slot is filled: the scope joins all workers, and each
            // worker writes its whole chunk. A missing slot would be a
            // harness bug; degrade to "no match" rather than panicking.
            out[i] = slot.unwrap_or(CandidateOutcome::NoMatch);
        }
        out
    }

    /// Rewrite against every AST; returns all successful rewrites, in input
    /// order (filtered + parallel via [`Rewriter::rewrite_candidates`]).
    ///
    /// Best-effort: an AST whose match attempt errors internally is skipped
    /// (treated like a non-match) so one bad AST cannot sink the others. Use
    /// [`Rewriter::rewrite`] per AST to observe the errors.
    pub fn rewrite_all(&self, query: &QgmGraph, asts: &[RegisteredAst]) -> Vec<Rewrite> {
        let refs: Vec<&RegisteredAst> = asts.iter().collect();
        self.rewrite_candidates(query, &refs)
            .into_iter()
            .filter_map(|o| match o {
                CandidateOutcome::Match(rw) => Some(*rw),
                _ => None,
            })
            .collect()
    }

    /// The pre-fast-path sweep: every AST through the full navigator,
    /// serially, no signature filter. Identical results to
    /// [`Rewriter::rewrite_all`] (the filter is sound and ordering is
    /// stable); kept as the baseline for benches and soundness tests.
    pub fn rewrite_all_unfiltered(&self, query: &QgmGraph, asts: &[RegisteredAst]) -> Vec<Rewrite> {
        asts.iter()
            .filter_map(|ast| self.rewrite(query, ast).ok().flatten())
            .collect()
    }

    /// Among all matching ASTs, pick the one whose backing table has the
    /// fewest rows (related problem (b): deciding whether/which AST to use).
    /// Best-effort over errored ASTs, like [`Rewriter::rewrite_all`]. Ties
    /// break toward the earliest-registered AST, deterministically.
    pub fn rewrite_best(
        &self,
        query: &QgmGraph,
        asts: &[RegisteredAst],
        row_count: impl Fn(&str) -> usize,
    ) -> Option<Rewrite> {
        self.rewrite_all(query, asts)
            .into_iter()
            .min_by_key(|r| row_count(&r.ast_name))
    }

    /// Diagnostic: the number of (query box, AST box) pairs that matched.
    pub fn match_count(&self, query: &QgmGraph, ast: &RegisteredAst) -> usize {
        run_navigator(query, &ast.graph, self.catalog).table.len()
    }
}
