//! Final rewrite construction: splice the winning compensation into the
//! query over the AST's materialized backing table.

use crate::context::{Ctx, MatchEntry};
use std::collections::HashMap;
use sumtab_qgm::{
    BoxId, BoxKind, ColRef, GroupByBox, OutputCol, QgmGraph, QuantId, ScalarExpr, SelectBox,
};

/// Maximum box-nesting depth the rewrite builder will walk before giving up
/// with an error instead of risking a stack overflow.
pub const MAX_REWRITE_DEPTH: usize = 256;

/// Build the rewritten query graph for a match of query box `matched` (an
/// entry against the AST root). `backing` names the AST's materialized
/// table; `backing_cols` are its column names (ordinals identical to the
/// AST root's outputs).
///
/// Returns `Err` when the match tables are internally inconsistent (e.g. a
/// compensation leaf that does not target the AST root) or the walk exceeds
/// [`MAX_REWRITE_DEPTH`]; these are matcher bugs surfaced as data, not
/// panics, so a caller can fall back to the un-rewritten plan.
pub fn build_rewrite(
    ctx: &Ctx<'_>,
    matched: BoxId,
    entry: &MatchEntry,
    backing: &str,
    backing_cols: &[String],
) -> Result<QgmGraph, String> {
    let mut out = QgmGraph::new();
    out.order = ctx.q.order.clone();

    let mut builder = RewriteBuilder {
        ctx,
        out: &mut out,
        backing,
        backing_cols,
        comp_map: HashMap::new(),
        q_map: HashMap::new(),
        quant_map: HashMap::new(),
        depth: 0,
    };

    // The replacement subtree for the matched query box.
    let replacement = match entry.comp_root {
        Some(root) => builder.clone_comp(root)?,
        None => builder.exact_projection(matched, &entry.colmap),
    };

    // Clone the query graph, substituting the replacement at `matched`.
    let root = if matched == ctx.q.root {
        replacement
    } else {
        builder.clone_query(ctx.q.root, matched, replacement)?
    };
    out.root = root;
    Ok(out)
}

struct RewriteBuilder<'a, 'b> {
    ctx: &'a Ctx<'b>,
    out: &'a mut QgmGraph,
    backing: &'a str,
    backing_cols: &'a [String],
    comp_map: HashMap<BoxId, BoxId>,
    q_map: HashMap<BoxId, BoxId>,
    quant_map: HashMap<QuantId, QuantId>,
    depth: usize,
}

impl RewriteBuilder<'_, '_> {
    /// Bump the walk depth, erroring out past [`MAX_REWRITE_DEPTH`].
    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_REWRITE_DEPTH {
            return Err(format!(
                "rewrite walk exceeded {MAX_REWRITE_DEPTH} nested boxes"
            ));
        }
        Ok(())
    }

    /// A base-table box over the materialized AST.
    fn backing_box(&mut self) -> BoxId {
        let b = self.out.add_box(BoxKind::BaseTable {
            table: self.backing.to_string(),
        });
        self.out.boxed_mut(b).outputs = self
            .backing_cols
            .iter()
            .enumerate()
            .map(|(i, name)| OutputCol {
                name: name.clone(),
                expr: ScalarExpr::BaseCol(i),
            })
            .collect();
        b
    }

    /// For an exact match: a projection SELECT over the backing table.
    fn exact_projection(&mut self, matched: BoxId, colmap: &[usize]) -> BoxId {
        let base = self.backing_box();
        let sel = self.out.add_box(BoxKind::Select(SelectBox::default()));
        let q = self
            .out
            .add_quant(sel, base, sumtab_qgm::QuantKind::Foreach, self.backing);
        let names: Vec<String> = self
            .ctx
            .q
            .boxed(matched)
            .outputs
            .iter()
            .map(|oc| oc.name.clone())
            .collect();
        self.out.boxed_mut(sel).outputs = colmap
            .iter()
            .zip(names)
            .map(|(&ord, name)| OutputCol {
                name,
                expr: ScalarExpr::col(q, ord),
            })
            .collect();
        sel
    }

    /// Clone a compensation fragment, replacing `SubsumerRef` leaves that
    /// target the AST root with the backing table.
    fn clone_comp(&mut self, b: BoxId) -> Result<BoxId, String> {
        if let Some(&m) = self.comp_map.get(&b) {
            return Ok(m);
        }
        self.enter()?;
        let src = self.ctx.comp.boxed(b).clone();
        if let BoxKind::SubsumerRef { target, .. } = &src.kind {
            if *target != self.ctx.a.root {
                return Err(format!(
                    "compensation leaf targets box {target:?}, not the AST root \
                     {:?}",
                    self.ctx.a.root
                ));
            }
            let nb = self.backing_box();
            self.comp_map.insert(b, nb);
            self.depth -= 1;
            return Ok(nb);
        }
        let new_id = self.out.add_box(BoxKind::Select(SelectBox::default()));
        self.comp_map.insert(b, new_id);
        for &q in &src.quants {
            let quant = self.ctx.comp.quant(q);
            let child = self.clone_comp(quant.input)?;
            let nq = self
                .out
                .add_quant(new_id, child, quant.kind, quant.name.clone());
            self.quant_map.insert(q, nq);
        }
        self.fill_box(new_id, &src)?;
        self.depth -= 1;
        Ok(new_id)
    }

    /// Clone the query graph from `b`, substituting `replacement` for the
    /// subtree rooted at `matched`.
    fn clone_query(
        &mut self,
        b: BoxId,
        matched: BoxId,
        replacement: BoxId,
    ) -> Result<BoxId, String> {
        if b == matched {
            return Ok(replacement);
        }
        if let Some(&m) = self.q_map.get(&b) {
            return Ok(m);
        }
        self.enter()?;
        let src = self.ctx.q.boxed(b).clone();
        let new_id = self.out.add_box(BoxKind::Select(SelectBox::default()));
        self.q_map.insert(b, new_id);
        for &q in &src.quants {
            let quant = self.ctx.q.quant(q);
            let child = self.clone_query(quant.input, matched, replacement)?;
            let nq = self
                .out
                .add_quant(new_id, child, quant.kind, quant.name.clone());
            self.quant_map.insert(q, nq);
        }
        self.fill_box(new_id, &src)?;
        self.depth -= 1;
        Ok(new_id)
    }

    /// Copy a source box's kind/outputs with quantifier remapping.
    fn fill_box(&mut self, new_id: BoxId, src: &sumtab_qgm::QgmBox) -> Result<(), String> {
        let remap = |e: &ScalarExpr| sumtab_qgm::graph::remap_expr(e, &self.quant_map);
        let outputs: Vec<OutputCol> = src
            .outputs
            .iter()
            .map(|oc| OutputCol {
                name: oc.name.clone(),
                expr: remap(&oc.expr),
            })
            .collect();
        let kind = match &src.kind {
            BoxKind::Select(s) => BoxKind::Select(SelectBox {
                predicates: s.predicates.iter().map(remap).collect(),
            }),
            BoxKind::GroupBy(g) => {
                let mut items = Vec::with_capacity(g.items.len());
                for c in &g.items {
                    let qid = *self.quant_map.get(&c.qid).ok_or_else(|| {
                        format!("group-by item references unmapped quantifier {:?}", c.qid)
                    })?;
                    items.push(ColRef {
                        qid,
                        ordinal: c.ordinal,
                    });
                }
                BoxKind::GroupBy(GroupByBox {
                    items,
                    sets: g.sets.clone(),
                })
            }
            BoxKind::BaseTable { table } => BoxKind::BaseTable {
                table: table.clone(),
            },
            BoxKind::SubsumerRef { .. } => {
                return Err("subsumer reference survived into a cloned interior box".to_string())
            }
        };
        let nb = self.out.boxed_mut(new_id);
        nb.outputs = outputs;
        nb.kind = kind;
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use crate::{RegisteredAst, Rewriter};
    use sumtab_catalog::Catalog;
    use sumtab_parser::parse_query;
    use sumtab_qgm::{build_query, BoxKind};

    /// The rewriter must replace the HIGHEST matched query box — covering
    /// the most work with the AST (HAVING included in the match, not
    /// recomputed over base tables).
    #[test]
    fn rewrite_replaces_the_highest_matching_box() {
        let cat = Catalog::credit_card_sample();
        let ast = RegisteredAst::from_sql(
            "a",
            "select faid, count(*) as cnt from trans group by faid",
            &cat,
        )
        .unwrap();
        let q = build_query(
            &parse_query(
                "select faid, count(*) as cnt from trans group by faid \
                 having count(*) > 5",
            )
            .unwrap(),
            &cat,
        )
        .unwrap();
        let rw = Rewriter::new(&cat).rewrite(&q, &ast).unwrap().unwrap();
        assert_eq!(rw.replaced_box, q.root, "top select (with HAVING) matched");
        // The rewritten graph must not scan the fact table at all.
        assert!(!rw
            .graph
            .boxes
            .iter()
            .any(|b| matches!(&b.kind, BoxKind::BaseTable { table } if table == "trans")));
    }

    #[test]
    fn match_count_reports_pair_statistics() {
        let cat = Catalog::credit_card_sample();
        let ast = RegisteredAst::from_sql(
            "a",
            "select faid, flid, count(*) as cnt from trans group by faid, flid",
            &cat,
        )
        .unwrap();
        let q = build_query(
            &parse_query("select faid, count(*) as cnt from trans group by faid").unwrap(),
            &cat,
        )
        .unwrap();
        let n = Rewriter::new(&cat).match_count(&q, &ast);
        // At least: base/base, lower selects, group-bys, top selects.
        assert!(n >= 4, "expected a chain of matches, got {n}");
    }
}
