//! Multidimensional exploration (Section 5 of the paper): one cube AST
//! materializes several cuboids at once; slice-and-dice queries are
//! answered by *slicing* the right cuboid out of it with IS NULL
//! predicates, re-grouping only when the exact cuboid is missing.
//!
//! Run with: `cargo run --release --example cube_explorer`

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::datagen::{generate, GenConfig};
use sumtab::{format_table, sort_rows, SummarySession};

fn main() {
    let cfg = GenConfig {
        transactions: 50_000,
        ..GenConfig::scale(50_000)
    };
    println!("Generating {} transactions...", cfg.transactions);
    let (catalog, db) = generate(&cfg);
    let mut session = SummarySession::with_data(catalog, db);

    // A grouping-sets AST covering three analysis paths (compare AST11 /
    // AST12 in the paper).
    session
        .run_script(
            "create summary table cube_ast as (
                 select flid, faid, year(date) as year, month(date) as month,
                        count(*) as cnt
                 from trans
                 group by grouping sets ((flid, year(date)),
                                         (flid, year(date), month(date)),
                                         (faid, year(date)),
                                         (year(date)))
             );",
        )
        .expect("materialize cube");
    println!(
        "cube_ast holds {} rows across 4 cuboids\n",
        session.session.db.row_count("cube_ast")
    );

    let explorations = [
        (
            "Exact cuboid: per-location yearly counts (slicing only)",
            "select flid, year(date) as year, count(*) as cnt \
             from trans group by flid, year(date)",
        ),
        (
            "Coarser: per-year totals (exact cuboid present)",
            "select year(date) as year, count(*) as cnt from trans group by year(date)",
        ),
        (
            "Regroup: per-location totals (no (flid) cuboid; re-aggregates \
             the (flid, year) cuboid)",
            "select flid, count(*) as cnt from trans group by flid",
        ),
        (
            "Cube query: gs((flid),(year)) answered with disjunctive slicing \
             + regroup",
            "select flid, year(date) as year, count(*) as cnt \
             from trans group by grouping sets ((flid), (year(date)))",
        ),
    ];

    for (title, sql) in explorations {
        println!("── {title} ──");
        println!("{}\n", session.explain(sql).unwrap());
        let fast = session.query(sql).unwrap();
        let plain = session.query_no_rewrite(sql).unwrap();
        assert_eq!(
            sort_rows(fast.rows.clone()),
            sort_rows(plain.rows),
            "cube rewrite must preserve results"
        );
        let preview: Vec<_> = sort_rows(fast.rows).into_iter().take(4).collect();
        println!("{}", format_table(&fast.header, &preview));
    }

    // A question the cube cannot answer: month-level detail for a cuboid
    // that was never materialized at month granularity.
    let missing = "select faid, month(date) as month, count(*) as cnt \
                   from trans group by faid, month(date)";
    println!("── Not answerable from the cube ──");
    println!("{}", session.explain(missing).unwrap());
}
