//! AST routing: when several summary tables can answer a query, pick the
//! cheapest (smallest) one — the paper's related problem (b). Also shows
//! iterative multi-AST rewriting (Section 7): different parts of one query
//! routed to different ASTs.
//!
//! Run with: `cargo run --release --example advisor`

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::datagen::{generate, GenConfig};
use sumtab::{RegisteredAst, Rewriter, SummarySession};

fn main() {
    let cfg = GenConfig {
        transactions: 60_000,
        ..GenConfig::scale(60_000)
    };
    println!("Generating {} transactions...\n", cfg.transactions);
    let (catalog, db) = generate(&cfg);
    let mut session = SummarySession::with_data(catalog, db);

    // Three summary tables at different granularities.
    session
        .run_script(
            "create summary table by_acct_loc_year as (
                 select faid, flid, year(date) as year, count(*) as cnt
                 from trans group by faid, flid, year(date)
             );
             create summary table by_acct_year as (
                 select faid, year(date) as year, count(*) as cnt
                 from trans group by faid, year(date)
             );
             create summary table by_year as (
                 select year(date) as year, count(*) as cnt
                 from trans group by year(date)
             );",
        )
        .expect("materialize candidates");

    for name in ["by_acct_loc_year", "by_acct_year", "by_year"] {
        println!(
            "  {name:<18} {:>8} rows",
            session.session.db.row_count(name)
        );
    }

    // Which ASTs can answer each query, and which is chosen?
    let queries = [
        "select faid, year(date) as year, count(*) as cnt from trans group by faid, year(date)",
        "select year(date) as year, count(*) as cnt from trans group by year(date)",
        "select faid, flid, count(*) as cnt from trans group by faid, flid",
    ];
    for sql in queries {
        println!("\nQuery: {sql}");
        let candidates: Vec<String> = {
            let rewriter = Rewriter::new(&session.session.catalog);
            let q = sumtab::build_query(
                &sumtab::parser::parse_query(sql).unwrap(),
                &session.session.catalog,
            )
            .unwrap();
            session
                .asts()
                .into_iter()
                .filter(|ast: &&RegisteredAst| matches!(rewriter.rewrite(&q, ast), Ok(Some(_))))
                .map(|a| {
                    format!(
                        "{} ({} rows)",
                        a.name,
                        session.session.db.row_count(&a.name)
                    )
                })
                .collect()
        };
        println!(
            "  candidates: {}",
            if candidates.is_empty() {
                "(none)".to_string()
            } else {
                candidates.join(", ")
            }
        );
        let result = session.query(sql).unwrap();
        println!(
            "  chosen: {}",
            result.used_ast.as_deref().unwrap_or("(base tables)")
        );
        // Verify against the base tables.
        let plain = session.query_no_rewrite(sql).unwrap();
        assert_eq!(
            sumtab::sort_rows(result.rows),
            sumtab::sort_rows(plain.rows)
        );
        println!("  ✓ results verified against base tables");
    }
}
