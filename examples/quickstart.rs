//! Quickstart: create a schema, load data, define an Automatic Summary
//! Table, and watch queries get transparently rewritten to use it.
//!
//! Run with: `cargo run --release --example quickstart`

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::{format_table, SummarySession};

fn main() {
    let mut session = SummarySession::new();

    // 1. A tiny sales schema with some data.
    session
        .run_script(
            "create table sales (
                 region varchar not null,
                 product varchar not null,
                 day date not null,
                 qty int not null,
                 price double not null
             );
             insert into sales values
                 ('west', 'tv',    date '1999-01-05', 2, 499.0),
                 ('west', 'tv',    date '1999-02-11', 1, 499.0),
                 ('west', 'radio', date '1999-02-12', 5,  49.0),
                 ('east', 'tv',    date '1999-03-02', 3, 520.0),
                 ('east', 'radio', date '1999-03-15', 2,  45.0),
                 ('east', 'radio', date '2000-01-20', 7,  39.0),
                 ('west', 'tv',    date '2000-02-28', 1, 479.0);",
        )
        .expect("schema + data");

    // 2. An Automatic Summary Table: monthly revenue per region/product.
    session
        .run_script(
            "create summary table monthly_sales as (
                 select region, product, year(day) as year, month(day) as month,
                        sum(qty * price) as revenue, count(*) as cnt
                 from sales
                 group by region, product, year(day), month(day)
             );",
        )
        .expect("summary table");

    // 3. Ask a coarser question: yearly revenue per region. The matcher
    //    proves it can be answered from the summary and rewrites the query.
    let sql = "select region, year(day) as year, sum(qty * price) as revenue \
               from sales group by region, year(day)";
    println!("User query:\n  {sql}\n");
    println!("{}\n", session.explain(sql).unwrap());

    let result = session.query(sql).unwrap();
    println!(
        "Answered from: {}\n",
        result.used_ast.as_deref().unwrap_or("(base tables)")
    );
    println!(
        "{}",
        format_table(&result.header, &sumtab::sort_rows(result.rows.clone()))
    );

    // 4. Sanity: identical to the unrewritten answer.
    let plain = session.query_no_rewrite(sql).unwrap();
    assert_eq!(
        sumtab::sort_rows(result.rows),
        sumtab::sort_rows(plain.rows)
    );
    println!("✓ rewritten result matches the base-table result");

    // 5. A question the summary cannot answer (needs day granularity).
    let daily = "select day, sum(qty) as q from sales group by day";
    println!("\nUser query:\n  {daily}\n");
    println!("{}", session.explain(daily).unwrap());
}
