//! A decision-support "dashboard" over the paper's credit-card star schema
//! at a realistic scale: generates 200k transactions, defines the paper's
//! AST1, and runs the dashboard's queries with and without rewriting,
//! reporting wall-clock speedups — the paper's headline claim in action.
//!
//! Run with: `cargo run --release --example retail_dashboard`

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::time::Instant;
use sumtab::datagen::{generate, GenConfig};
use sumtab::{format_table, sort_rows, SummarySession};

fn main() {
    // 1. Generate the star schema: 200k transactions, ~150 accounts.
    let cfg = GenConfig {
        transactions: 200_000,
        ..GenConfig::scale(200_000)
    };
    println!("Generating {} transactions...", cfg.transactions);
    let (catalog, db) = generate(&cfg);
    let mut session = SummarySession::with_data(catalog, db);

    // 2. The warehouse administrator defines AST1 (Figure 2 of the paper).
    session
        .run_script(
            "create summary table ast1 as (
                 select faid, flid, year(date) as year, count(*) as cnt
                 from trans group by faid, flid, year(date)
             );",
        )
        .expect("materialize AST1");
    let fact_rows = session.session.db.row_count("trans");
    let ast_rows = session.session.db.row_count("ast1");
    println!(
        "Fact table: {fact_rows} rows; AST1: {ast_rows} rows \
         (summarization ratio {:.1}x)\n",
        fact_rows as f64 / ast_rows as f64
    );

    // 3. The dashboard's queries — all answerable from AST1.
    let dashboard = [
        (
            "Active accounts per state and year (USA)",
            "select faid, state, year(date) as year, count(*) as cnt \
             from trans, loc where flid = lid and country = 'USA' \
             group by faid, state, year(date) having count(*) > 100",
        ),
        (
            "Yearly transaction volume",
            "select year(date) as year, count(*) as cnt from trans group by year(date)",
        ),
        (
            "Per-location traffic in 1992",
            "select flid, count(*) as cnt from trans where year(date) = 1992 group by flid",
        ),
    ];

    for (title, sql) in dashboard {
        println!("── {title} ──");
        let t0 = Instant::now();
        let plain = session.query_no_rewrite(sql).unwrap();
        let t_plain = t0.elapsed();

        let t1 = Instant::now();
        let fast = session.query(sql).unwrap();
        let t_fast = t1.elapsed();

        assert_eq!(
            sort_rows(plain.rows.clone()),
            sort_rows(fast.rows.clone()),
            "rewrite must preserve results"
        );
        println!(
            "  base tables: {:>9.2?}   via {}: {:>9.2?}   speedup: {:.1}x",
            t_plain,
            fast.used_ast.as_deref().unwrap_or("(none)"),
            t_fast,
            t_plain.as_secs_f64() / t_fast.as_secs_f64().max(1e-9)
        );
        let preview: Vec<_> = sort_rows(fast.rows).into_iter().take(5).collect();
        println!("{}", format_table(&fast.header, &preview));
    }
}
